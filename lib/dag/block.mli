(** Series–parallel construction of well-formed weighted dags.

    A {e block} is a sub-dag with a designated entry vertex and exit vertex.
    Blocks compose sequentially ({!seq}) and in parallel ({!fork2}, which
    inserts an explicit fork vertex and join vertex, matching the paper's
    convention that the left child of a fork is the continuation and the
    right child the spawned thread).  Latency-incurring operations are built
    with {!latency}: a vertex whose single out-edge is heavy, modelling an
    instruction that starts an operation taking [delta - 1] further steps
    (the "common use case" of Section 2).

    Every dag assembled from these combinators and rooted with {!finish}
    satisfies the structural assumptions of Section 2. *)

type block = { entry : Dag.vertex; exit : Dag.vertex }

val vertex : ?label:string -> Dag.Builder.t -> block
(** A single unit-work vertex. *)

val chain : ?label:string -> Dag.Builder.t -> int -> block
(** [chain b k] is [k >= 1] vertices in sequence (work [k], span [k - 1]). *)

val seq : Dag.Builder.t -> block -> block -> block
(** [seq b b1 b2] runs [b1] then [b2] (light edge from [b1.exit] to
    [b2.entry]). *)

val seq_list : Dag.Builder.t -> block list -> block
(** Sequential composition of a non-empty list of blocks. *)

val fork2 : ?fork_label:string -> ?join_label:string -> Dag.Builder.t -> block -> block -> block
(** [fork2 b left right] adds a fork vertex spawning [right] with [left] as
    the continuation, and a join vertex awaiting both.  Work is
    [work left + work right + 2]. *)

val fork_tree : Dag.Builder.t -> block array -> block
(** Balanced binary fork–join tree over [>= 1] blocks (the shape of the
    map-and-reduce example, Figure 7). *)

val latency : ?label:string -> Dag.Builder.t -> int -> block
(** [latency b delta] is a vertex [u] followed by a heavy edge of weight
    [delta >= 2] to a continuation vertex [v]: [u] issues the operation,
    [v] consumes its result [delta] steps later.  Entry [u], exit [v].
    @raise Invalid_argument if [delta < 2]. *)

val with_latency : Dag.Builder.t -> int -> block -> block
(** [with_latency b delta blk] prefixes [blk] with a {!latency} op. *)

val finish : Dag.Builder.t -> block -> Dag.t
(** Builds the dag, verifying well-formedness.
    @raise Invalid_argument if the result violates Section 2 assumptions. *)
