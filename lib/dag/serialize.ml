let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "dag %d\n" (Dag.num_vertices g));
  Dag.iter_vertices g (fun v ->
      let label = Dag.label g v in
      if label <> "" then Buffer.add_string buf (Printf.sprintf "v %d %s\n" v label));
  Dag.iter_vertices g (fun v ->
      Array.iter
        (fun (dst, weight) -> Buffer.add_string buf (Printf.sprintf "e %d %d %d\n" v dst weight))
        (Dag.out_edges g v));
  Buffer.contents buf

let of_string text =
  let fail line msg = invalid_arg (Printf.sprintf "Serialize.of_string: line %d: %s" line msg) in
  let b = Dag.Builder.create () in
  let declared = ref None in
  let labels = Hashtbl.create 16 in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line with
        | "dag" :: n :: [] -> (
            match int_of_string_opt n with
            | Some n when n >= 1 -> declared := Some n
            | _ -> fail lineno "bad vertex count")
        | "v" :: id :: rest -> (
            match int_of_string_opt id with
            | Some id -> Hashtbl.replace labels id (String.concat " " rest)
            | None -> fail lineno "bad vertex id")
        | [ "e"; src; dst; weight ] -> (
            match (int_of_string_opt src, int_of_string_opt dst, int_of_string_opt weight) with
            | Some s, Some d, Some w -> edges := (lineno, s, d, w) :: !edges
            | _ -> fail lineno "bad edge")
        | _ -> fail lineno "unrecognized line")
    (String.split_on_char '\n' text);
  let n = match !declared with Some n -> n | None -> invalid_arg "Serialize.of_string: missing 'dag <n>' header" in
  for id = 0 to n - 1 do
    let label = Option.value ~default:"" (Hashtbl.find_opt labels id) in
    ignore (Dag.Builder.add_vertex ~label b)
  done;
  List.iter
    (fun (lineno, s, d, w) ->
      if s < 0 || s >= n || d < 0 || d >= n then fail lineno "edge endpoint out of range";
      if w < 1 then fail lineno "edge weight must be >= 1";
      Dag.Builder.add_edge ~weight:w b s d)
    (List.rev !edges);
  Dag.Builder.build b

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
