let to_dot ?(name = "dag") ?(show_ids = true) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  Dag.iter_vertices g (fun v ->
      let lbl = Dag.label g v in
      let text =
        match (lbl, show_ids) with
        | "", _ -> string_of_int v
        | l, true -> Printf.sprintf "%s\\n%d" l v
        | l, false -> l
      in
      Buffer.add_string buf (Printf.sprintf "  v%d [label=\"%s\"];\n" v text));
  List.iter
    (fun (e : Dag.edge) ->
      if e.weight > 1 then
        Buffer.add_string buf
          (Printf.sprintf "  v%d -> v%d [style=bold, penwidth=2.5, label=\"%d\"];\n" e.src e.dst
             e.weight)
      else Buffer.add_string buf (Printf.sprintf "  v%d -> v%d;\n" e.src e.dst))
    (Dag.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?name ?show_ids path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?show_ids g))
