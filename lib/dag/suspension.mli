(** Suspension width (Definition 1).

    The suspension width [U] of a dag is the maximum, over all partitions
    [(S, T)] of the vertices with the root in [S], the final vertex in [T]
    and both [S] and [T] inducing (weakly) connected subdags, of the number
    of heavy edges crossing from [S] to [T].  It bounds the number of
    simultaneously suspended vertices in any execution (Section 2).

    [exact] performs exhaustive enumeration and is exponential in the number
    of vertices — intended for validating closed forms on small dags. *)

val crossing_heavy : Dag.t -> in_s:(Dag.vertex -> bool) -> int
(** Number of heavy edges [(u, v)] with [u] in [S] and [v] not in [S]. *)

val exact : ?max_vertices:int -> Dag.t -> int
(** Exhaustive suspension width per Definition 1.
    @param max_vertices safety bound, default 22.
    @raise Invalid_argument if the dag exceeds [max_vertices]. *)

val exact_prefix : ?max_vertices:int -> Dag.t -> int
(** Like {!exact} but restricted to {e downward-closed} [S] (execution
    prefixes).  Always [<= exact g]; equals the maximum number of vertices
    that can be suspended simultaneously in some schedule. *)

val lower_bound_greedy : Dag.t -> int
(** Cheap lower bound on [U]: maximum number of simultaneously suspended
    vertices along the execution-prefix chain of a topological order.
    Linear time; [lower_bound_greedy g <= exact_prefix g <= exact g]. *)
