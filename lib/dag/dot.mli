(** Graphviz export of weighted dags.

    Heavy edges are drawn bold and annotated with their weight, matching the
    paper's figures (light edges thin, heavy edges thick). *)

val to_dot : ?name:string -> ?show_ids:bool -> Dag.t -> string
(** DOT source for the dag.  Vertex labels come from {!Dag.label} when
    non-empty; [show_ids] (default true) appends the vertex id. *)

val write_file : ?name:string -> ?show_ids:bool -> string -> Dag.t -> unit
(** [write_file path g] writes {!to_dot} output to [path]. *)
