type block = { entry : Dag.vertex; exit : Dag.vertex }

let vertex ?label b =
  let v = Dag.Builder.add_vertex ?label b in
  { entry = v; exit = v }

let chain ?label b k =
  if k < 1 then invalid_arg "Block.chain: need at least one vertex";
  let first = Dag.Builder.add_vertex ?label b in
  let rec extend prev i =
    if i = k then prev
    else begin
      let v = Dag.Builder.add_vertex ?label b in
      Dag.Builder.add_edge b prev v;
      extend v (i + 1)
    end
  in
  { entry = first; exit = extend first 1 }

let seq b b1 b2 =
  Dag.Builder.add_edge b b1.exit b2.entry;
  { entry = b1.entry; exit = b2.exit }

let seq_list b = function
  | [] -> invalid_arg "Block.seq_list: empty list"
  | first :: rest -> List.fold_left (seq b) first rest

let fork2 ?(fork_label = "fork") ?(join_label = "join") b left right =
  let fork = Dag.Builder.add_vertex ~label:fork_label b in
  let join = Dag.Builder.add_vertex ~label:join_label b in
  (* Edge order matters: the first out-edge is the left child
     (continuation), the second the spawned thread. *)
  Dag.Builder.add_edge b fork left.entry;
  Dag.Builder.add_edge b fork right.entry;
  Dag.Builder.add_edge b left.exit join;
  Dag.Builder.add_edge b right.exit join;
  { entry = fork; exit = join }

let fork_tree b blocks =
  let n = Array.length blocks in
  if n = 0 then invalid_arg "Block.fork_tree: empty array";
  let rec go lo hi =
    if hi - lo = 1 then blocks.(lo)
    else
      let mid = (lo + hi) / 2 in
      fork2 b (go lo mid) (go mid hi)
  in
  go 0 n

let latency ?label b delta =
  if delta < 2 then invalid_arg "Block.latency: delta must be >= 2";
  let u = Dag.Builder.add_vertex ?label b in
  let v = Dag.Builder.add_vertex ?label b in
  Dag.Builder.add_edge ~weight:delta b u v;
  { entry = u; exit = v }

let with_latency b delta blk = seq b (latency b delta) blk

let finish b blk =
  (* A block built by these combinators already has a unique entry/exit,
     but the entry might not be the builder's vertex 0; Dag.Builder.build
     locates root and final by degree, so nothing extra is needed beyond
     validation. *)
  ignore blk;
  let g = Dag.Builder.build b in
  Check.check_exn g;
  g
