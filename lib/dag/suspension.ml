let crossing_heavy g ~in_s =
  List.fold_left
    (fun acc (e : Dag.edge) -> if in_s e.src && not (in_s e.dst) then acc + 1 else acc)
    0 (Dag.heavy_edges g)

(* Bitmask machinery: vertex sets as int masks (so at most Sys.int_size - 1
   vertices; the [max_vertices] guard keeps us far below that). *)

let undirected_adjacency g =
  let n = Dag.num_vertices g in
  let adj = Array.make n 0 in
  Dag.iter_vertices g (fun u ->
      Array.iter
        (fun (v, _) ->
          adj.(u) <- adj.(u) lor (1 lsl v);
          adj.(v) <- adj.(v) lor (1 lsl u))
        (Dag.out_edges g u));
  adj

(* Is the subgraph induced by [mask] weakly connected?  Fixpoint expansion
   from the lowest set bit through [adj], staying inside [mask]. *)
let connected adj mask =
  if mask = 0 then true
  else begin
    let seed = mask land -mask in
    let reached = ref seed in
    let continue = ref true in
    while !continue do
      let next = ref !reached in
      let rest = ref (!reached land mask) in
      while !rest <> 0 do
        let bit = !rest land - !rest in
        rest := !rest lxor bit;
        (* index of bit *)
        let v = ref 0 and b = ref bit in
        while !b > 1 do
          b := !b lsr 1;
          incr v
        done;
        next := !next lor (adj.(!v) land mask)
      done;
      if !next = !reached then continue := false else reached := !next
    done;
    !reached land mask = mask
  end

let guard ?(max_vertices = 22) g name =
  let n = Dag.num_vertices g in
  if n > max_vertices then
    invalid_arg
      (Printf.sprintf "Suspension.%s: dag has %d vertices > limit %d (exponential search)" name n
         max_vertices);
  n

(* Downward closure check: S is an order ideal iff for every v in S all
   parents of v are in S.  Precomputed parent masks make this O(n). *)
let parent_masks g =
  let n = Dag.num_vertices g in
  Array.init n (fun v ->
      Array.fold_left (fun m (u, _) -> m lor (1 lsl u)) 0 (Dag.in_edges g v))

let max_crossing g ~admissible =
  let n = Dag.num_vertices g in
  let adj = undirected_adjacency g in
  let heavy = Array.of_list (Dag.heavy_edges g) in
  let root_bit = 1 lsl Dag.root g and final_bit = 1 lsl Dag.final g in
  let full = (1 lsl n) - 1 in
  let best = ref 0 in
  for s = 0 to full do
    if
      s land root_bit <> 0
      && s land final_bit = 0
      && admissible s
      && connected adj s
      && connected adj (full lxor s)
    then begin
      let c = ref 0 in
      Array.iter
        (fun (e : Dag.edge) ->
          if s land (1 lsl e.src) <> 0 && s land (1 lsl e.dst) = 0 then incr c)
        heavy;
      if !c > !best then best := !c
    end
  done;
  !best

let exact ?max_vertices g =
  ignore (guard ?max_vertices g "exact");
  max_crossing g ~admissible:(fun _ -> true)

let exact_prefix ?max_vertices g =
  ignore (guard ?max_vertices g "exact_prefix");
  let parents = parent_masks g in
  let ideal s =
    let ok = ref true in
    let rest = ref s in
    while !ok && !rest <> 0 do
      let bit = !rest land - !rest in
      rest := !rest lxor bit;
      let v = ref 0 and b = ref bit in
      while !b > 1 do
        b := !b lsr 1;
        incr v
      done;
      if parents.(!v) land s <> parents.(!v) then ok := false
    done;
    !ok
  in
  max_crossing g ~admissible:ideal

let lower_bound_greedy g =
  (* Walk a topological order; after each prefix, count heavy edges leaving
     the prefix.  Any such prefix is a valid execution cut (though not
     necessarily with connected complement), so this is a heuristic lower
     bound on the number of concurrent suspensions a schedule can reach. *)
  let n = Dag.num_vertices g in
  let in_prefix = Array.make n false in
  let live = ref 0 and best = ref 0 in
  Array.iter
    (fun v ->
      (* v enters the prefix: its heavy in-edge (if any) stops crossing,
         its heavy out-edges start crossing. *)
      Array.iter (fun (u, w) -> if w > 1 && in_prefix.(u) then decr live) (Dag.in_edges g v);
      in_prefix.(v) <- true;
      Array.iter (fun (_, w) -> if w > 1 then incr live) (Dag.out_edges g v);
      if !live > !best then best := !live)
    (Dag.topological_order g);
  !best
