(** Workload dag generators.

    Includes the two examples of Section 5 — distributed map-and-reduce
    (Figures 7/8, maximal suspension width [U = n]) and the "server"
    (Figures 9/10, minimal suspension width [U = 1]) — plus classical
    fork–join computations and randomized dags for property tests.

    All generated dags satisfy {!Check.well_formed}.

    Every generator validates its arguments up front ([n >= 1],
    [leaf_work >= 1], latencies [>= 2], and so on, per the individual
    docstrings) and raises [Invalid_argument] naming the offending
    parameter and value. *)

val map_reduce : n:int -> leaf_work:int -> latency:int -> Dag.t
(** Distributed map-and-reduce (Figure 8): a balanced binary fork tree over
    [n >= 1] leaves; each leaf performs a [getValue] operation incurring
    [latency >= 2] rounds of latency, then [leaf_work >= 1] rounds of
    computation; results combine up a join tree.  Suspension width is [n]:
    all remote reads may be in flight at once. *)

val map_reduce_jitter :
  seed:int -> n:int -> leaf_work:int -> min_latency:int -> max_latency:int -> Dag.t
(** {!map_reduce} with per-leaf latencies drawn uniformly from
    [[min_latency, max_latency]] (deterministic in [seed]): heterogeneous
    remote servers.  Requires [2 <= min_latency <= max_latency]. *)

val server : n:int -> f_work:int -> latency:int -> Dag.t
(** The "server" (Figure 10): takes [n >= 1] inputs one at a time, each
    incurring [latency] rounds; after each input, forks [f_work] rounds of
    processing in parallel with accepting the next input.  Only one input
    operation is outstanding at any time, so the suspension width is 1. *)

val fib : ?leaf_work:int -> n:int -> unit -> Dag.t
(** Naive parallel Fibonacci fork–join dag, no heavy edges.  [fib n] forks
    [fib (n-1)] and [fib (n-2)]; base cases [n < 2] are leaves of
    [leaf_work >= 1] (default 1) vertices.  Requires [n >= 0]. *)

val chain : ?latency_every:int -> ?latency:int -> n:int -> unit -> Dag.t
(** [n >= 2] vertices in sequence.  If [latency_every > 0], every
    [latency_every]-th edge is heavy with weight [latency >= 2]: a fully
    sequential computation with unavoidable (critical-path) latency. *)

val parallel_chains : k:int -> len:int -> Dag.t
(** [k >= 1] independent chains of [len >= 1] vertices under one fork tree:
    embarrassingly parallel computation, no latency. *)

val pipeline : stages:int -> items:int -> latency:int -> Dag.t
(** [items >= 1] independent pipelines of [stages >= 1] unit stages
    separated by heavy edges of weight [latency >= 2, when stages > 1],
    under one fork tree: models streaming items through latency-separated
    processing stages. *)

val random_fork_join :
  seed:int -> size_hint:int -> latency_prob:float -> max_latency:int -> Dag.t
(** Deterministic pseudo-random series-parallel dag of roughly [size_hint]
    vertices.  Each sequential step incurs latency with probability
    [latency_prob] (weight uniform in [2 .. max_latency]).  Suitable for
    property-based testing: always well-formed. *)

val resume_burst : n:int -> leaf_work:int -> latency:int -> Dag.t
(** A spine of [n] vertices, the [i]-th of which spawns a suspended task
    over a heavy edge of weight [latency + (n - i)]: when the spine is
    executed one vertex per round (its natural schedule), all [n]
    suspended tasks become ready {e in the same round}, on the same deque.
    Each task then performs [leaf_work] rounds of computation and all
    results join.  This is the worst case for resumed-batch injection —
    the workload behind the pfor-tree design of [addResumedVertices] and
    the AB2 ablation.  [U = n]; requires [latency >= 2]. *)

val diamond : unit -> Dag.t
(** Minimal fork–join: 4 vertices (0 = fork, 1/2 = branches, 3 = join),
    used in unit tests. *)

val single_latency : delta:int -> Dag.t
(** Root, heavy edge of weight [delta >= 2], final: the smallest suspending
    computation ([W = 2], [S = delta], [U = 1]). *)
