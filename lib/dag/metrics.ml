let work g = Dag.num_vertices g

(* Longest path from the root where each edge (u, v, w) contributes
   [cost u v w]; computed over a topological order. *)
let longest_from_root g cost =
  let n = Dag.num_vertices g in
  let d = Array.make n min_int in
  d.(Dag.root g) <- 0;
  Array.iter
    (fun u ->
      if d.(u) <> min_int then
        Array.iter
          (fun (v, w) ->
            let c = d.(u) + cost w in
            if c > d.(v) then d.(v) <- c)
          (Dag.out_edges g u))
    (Dag.topological_order g);
  (* Vertices unreachable from the root (malformed dags) get depth 0. *)
  Array.iteri (fun v x -> if x = min_int then d.(v) <- 0) d;
  d

let weighted_depth g = longest_from_root g (fun w -> w)

let max_of arr = Array.fold_left max 0 arr

let span g = max_of (weighted_depth g)

let unweighted_span g = max_of (longest_from_root g (fun _ -> 1))

let parallelism g =
  let s = span g in
  if s = 0 then infinity else float_of_int (work g) /. float_of_int s

let total_latency g =
  List.fold_left (fun acc (e : Dag.edge) -> acc + e.weight - 1) 0 (Dag.heavy_edges g)

let num_heavy_edges g = List.length (Dag.heavy_edges g)

let critical_path_latency g =
  max_of (longest_from_root g (fun w -> w - 1))
