type vertex = int

type edge = { src : vertex; dst : vertex; weight : int }

type t = {
  n : int;
  out : (vertex * int) array array;
  ins : (vertex * int) array array;
  root : vertex;
  final : vertex;
  labels : string array;
  topo : vertex array;
}

let num_vertices g = g.n
let root g = g.root
let final g = g.final
let out_edges g v = g.out.(v)
let in_edges g v = g.ins.(v)
let in_degree g v = Array.length g.ins.(v)
let out_degree g v = Array.length g.out.(v)
let label g v = g.labels.(v)

let edges g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    Array.iter (fun (dst, weight) -> acc := { src = v; dst; weight } :: !acc) g.out.(v)
  done;
  !acc

let heavy_edges g = List.filter (fun e -> e.weight > 1) (edges g)

let is_heavy_target g v = Array.exists (fun (_, w) -> w > 1) g.ins.(v)

let topological_order g = Array.copy g.topo

let iter_vertices g f =
  for v = 0 to g.n - 1 do
    f v
  done

let pp ppf g =
  Format.fprintf ppf "@[<v>dag with %d vertices (root=%d, final=%d)@," g.n g.root g.final;
  iter_vertices g (fun v ->
      let edge ppf (c, w) = if w = 1 then Format.fprintf ppf "%d" c else Format.fprintf ppf "%d[%d]" c w in
      Format.fprintf ppf "  %d -> %a@," v
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") edge)
        (Array.to_list g.out.(v)));
  Format.fprintf ppf "@]"

module Builder = struct
  type dag = t

  type t = {
    mutable count : int;
    mutable out_rev : (vertex * int) list array; (* reversed insertion order *)
    mutable lbls : string array;
  }

  let create () = { count = 0; out_rev = Array.make 16 []; lbls = Array.make 16 "" }

  let ensure_capacity b n =
    let cap = Array.length b.out_rev in
    if n > cap then begin
      let cap' = max n (2 * cap) in
      let out' = Array.make cap' [] in
      Array.blit b.out_rev 0 out' 0 b.count;
      b.out_rev <- out';
      let l' = Array.make cap' "" in
      Array.blit b.lbls 0 l' 0 b.count;
      b.lbls <- l'
    end

  let add_vertex ?(label = "") b =
    ensure_capacity b (b.count + 1);
    let v = b.count in
    b.count <- v + 1;
    b.lbls.(v) <- label;
    v

  let check_vertex b v name =
    if v < 0 || v >= b.count then
      invalid_arg (Printf.sprintf "Dag.Builder.add_edge: unknown %s vertex %d" name v)

  let add_edge ?(weight = 1) b u v =
    if weight < 1 then invalid_arg "Dag.Builder.add_edge: weight must be >= 1";
    check_vertex b u "source";
    check_vertex b v "target";
    b.out_rev.(u) <- (v, weight) :: b.out_rev.(u)

  let num_vertices b = b.count

  (* Kahn's algorithm; raises on cycles. *)
  let topo_sort n out ins =
    let order = Array.make n (-1) in
    let pending = Array.make n 0 in
    for v = 0 to n - 1 do
      pending.(v) <- Array.length ins.(v)
    done;
    let queue = Queue.create () in
    for v = 0 to n - 1 do
      if pending.(v) = 0 then Queue.add v queue
    done;
    let k = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      order.(!k) <- v;
      incr k;
      Array.iter
        (fun (c, _) ->
          pending.(c) <- pending.(c) - 1;
          if pending.(c) = 0 then Queue.add c queue)
        out.(v)
    done;
    if !k <> n then invalid_arg "Dag.Builder.build: dag contains a cycle";
    order

  let build b =
    let n = b.count in
    if n = 0 then invalid_arg "Dag.Builder.build: empty dag";
    let out = Array.init n (fun v -> Array.of_list (List.rev b.out_rev.(v))) in
    let in_count = Array.make n 0 in
    Array.iter (Array.iter (fun (c, _) -> in_count.(c) <- in_count.(c) + 1)) out;
    let ins = Array.init n (fun v -> Array.make in_count.(v) (0, 0)) in
    let fill = Array.make n 0 in
    for u = 0 to n - 1 do
      Array.iter
        (fun (c, w) ->
          ins.(c).(fill.(c)) <- (u, w);
          fill.(c) <- fill.(c) + 1)
        out.(u)
    done;
    let topo = topo_sort n out ins in
    (* Root/final: first in-degree-0 / out-degree-0 vertex.  Uniqueness is a
       well-formedness property checked by [Check]; we still need sensible
       values for malformed dags used in negative tests. *)
    let find_first p =
      let rec go v = if v >= n then 0 else if p v then v else go (v + 1) in
      go 0
    in
    let root = find_first (fun v -> in_count.(v) = 0) in
    let final = find_first (fun v -> Array.length out.(v) = 0) in
    let labels = Array.init n (fun v -> b.lbls.(v)) in
    { n; out; ins; root; final; labels; topo }
end
