(** Weighted computation dags (Section 2 of the paper).

    A dag represents a parallel computation: vertices are unit-work
    instructions; an edge [(u, v, w)] is a dependence from [u] to [v] with
    latency [w >= 1].  An edge of weight 1 is {e light}: [v] may run
    immediately after [u].  An edge of weight [w > 1] is {e heavy}: [v] is
    enabled when its last parent executes but becomes ready only [w] rounds
    after that parent executed.

    Well-formed dags (checked by {!Check.well_formed}) have a unique root
    (in-degree 0), a unique final vertex (out-degree 0), out-degree at most
    two, and every target of a heavy edge has in-degree exactly one.

    Out-edges are ordered: the first out-edge of a vertex leads to its
    {e left} child (the continuation of the same thread) and the second to
    its {e right} child (the first instruction of a spawned thread). *)

type vertex = int
(** Vertices are dense integer identifiers in [0 .. num_vertices - 1]. *)

type edge = { src : vertex; dst : vertex; weight : int }

type t
(** An immutable weighted dag. *)

val num_vertices : t -> int

val root : t -> vertex
(** The unique vertex with in-degree zero. *)

val final : t -> vertex
(** The unique vertex with out-degree zero. *)

val out_edges : t -> vertex -> (vertex * int) array
(** Ordered out-edges of a vertex: index 0 is the left child, index 1 (if
    present) the right child.  Each element is [(target, weight)]. *)

val in_edges : t -> vertex -> (vertex * int) array
(** In-edges of a vertex as [(source, weight)] pairs. *)

val in_degree : t -> vertex -> int
val out_degree : t -> vertex -> int

val label : t -> vertex -> string
(** Free-form label attached at construction time; [""] if none. *)

val edges : t -> edge list
(** All edges, in no particular order. *)

val heavy_edges : t -> edge list
(** Edges with [weight > 1]. *)

val is_heavy_target : t -> vertex -> bool
(** [true] iff the vertex has a heavy in-edge (hence will suspend). *)

val topological_order : t -> vertex array
(** A topological order of all vertices (root first, final last). *)

val iter_vertices : t -> (vertex -> unit) -> unit

val pp : Format.formatter -> t -> unit
(** Debug printer: one line per vertex with its out-edges. *)

(** Mutable builder for dags. *)
module Builder : sig
  type dag = t
  type t

  val create : unit -> t

  val add_vertex : ?label:string -> t -> vertex
  (** Allocates a fresh vertex and returns its id. *)

  val add_edge : ?weight:int -> t -> vertex -> vertex -> unit
  (** [add_edge b u v] adds a dependence edge from [u] to [v].  Default
      weight is 1 (light).  Edges are ordered by insertion: the first edge
      added from [u] is its left child.
      @raise Invalid_argument if [weight < 1] or a vertex id is unknown. *)

  val num_vertices : t -> int

  val build : t -> dag
  (** Freezes the builder.  Does {e not} validate the structural
      assumptions; see {!Check.well_formed}.
      @raise Invalid_argument if the dag is empty or contains a cycle. *)
end
