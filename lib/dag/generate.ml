(* Uniform precondition checks: every generator validates its arguments up
   front and reports the offending value, so fuzzers (and users) get
   "Generate.server: latency must be >= 2 (got 1)" instead of a failure
   deep inside a Block combinator. *)
let check_min fn param ~min v =
  if v < min then
    invalid_arg (Printf.sprintf "Generate.%s: %s must be >= %d (got %d)" fn param min v)

let check_latency fn ?(param = "latency") v = check_min fn param ~min:2 v

let map_reduce ~n ~leaf_work ~latency =
  check_min "map_reduce" "n" ~min:1 n;
  check_min "map_reduce" "leaf_work" ~min:1 leaf_work;
  check_latency "map_reduce" latency;
  let b = Dag.Builder.create () in
  let leaf i =
    let get = Block.latency ~label:(Printf.sprintf "getValue %d" i) b latency in
    let f = Block.chain ~label:"f" b leaf_work in
    Block.seq b get f
  in
  let leaves = Array.init n leaf in
  Block.finish b (Block.fork_tree b leaves)

let map_reduce_jitter ~seed ~n ~leaf_work ~min_latency ~max_latency =
  check_min "map_reduce_jitter" "n" ~min:1 n;
  check_min "map_reduce_jitter" "leaf_work" ~min:1 leaf_work;
  check_latency "map_reduce_jitter" ~param:"min_latency" min_latency;
  check_min "map_reduce_jitter" "max_latency" ~min:min_latency max_latency;
  let st = Random.State.make [| seed; 0x717 |] in
  let b = Dag.Builder.create () in
  let leaf i =
    let delta = min_latency + Random.State.int st (max_latency - min_latency + 1) in
    let get = Block.latency ~label:(Printf.sprintf "getValue %d" i) b delta in
    Block.seq b get (Block.chain ~label:"f" b leaf_work)
  in
  Block.finish b (Block.fork_tree b (Array.init n leaf))

let server ~n ~f_work ~latency =
  check_min "server" "n" ~min:1 n;
  check_min "server" "f_work" ~min:1 f_work;
  check_latency "server" latency;
  let b = Dag.Builder.create () in
  let rec serve k =
    let get = Block.latency ~label:(Printf.sprintf "getInput %d" k) b latency in
    let rest =
      if k = n - 1 then Block.vertex ~label:"done" b
      else
        let f = Block.chain ~label:"f" b f_work in
        Block.fork2 ~fork_label:"serve-fork" ~join_label:"g" b f (serve (k + 1))
    in
    Block.seq b get rest
  in
  Block.finish b (serve 0)

let fib ?(leaf_work = 1) ~n () =
  check_min "fib" "n" ~min:0 n;
  check_min "fib" "leaf_work" ~min:1 leaf_work;
  let b = Dag.Builder.create () in
  let rec go n =
    if n < 2 then Block.chain ~label:"base" b leaf_work
    else Block.fork2 b (go (n - 1)) (go (n - 2))
  in
  Block.finish b (go n)

let chain ?(latency_every = 0) ?(latency = 2) ~n () =
  check_min "chain" "n" ~min:2 n;
  check_min "chain" "latency_every" ~min:0 latency_every;
  if latency_every > 0 then check_latency "chain" latency;
  let b = Dag.Builder.create () in
  let first = Dag.Builder.add_vertex b in
  let rec extend prev i =
    if i = n then prev
    else begin
      let v = Dag.Builder.add_vertex b in
      let weight = if latency_every > 0 && i mod latency_every = 0 then latency else 1 in
      Dag.Builder.add_edge ~weight b prev v;
      extend v (i + 1)
    end
  in
  ignore (extend first 1);
  let g = Dag.Builder.build b in
  Check.check_exn g;
  g

let parallel_chains ~k ~len =
  check_min "parallel_chains" "k" ~min:1 k;
  check_min "parallel_chains" "len" ~min:1 len;
  let b = Dag.Builder.create () in
  let chains = Array.init k (fun _ -> Block.chain b len) in
  Block.finish b (Block.fork_tree b chains)

let pipeline ~stages ~items ~latency =
  check_min "pipeline" "stages" ~min:1 stages;
  check_min "pipeline" "items" ~min:1 items;
  if stages > 1 then check_latency "pipeline" latency;
  let b = Dag.Builder.create () in
  let item _ =
    let stage _ = Block.vertex ~label:"stage" b in
    let rec go i acc =
      if i = stages then acc
      else go (i + 1) (Block.seq b acc (Block.with_latency b latency (stage i)))
    in
    go 1 (stage 0)
  in
  Block.finish b (Block.fork_tree b (Array.init items item))

let random_fork_join ~seed ~size_hint ~latency_prob ~max_latency =
  check_min "random_fork_join" "size_hint" ~min:1 size_hint;
  if latency_prob < 0. || latency_prob > 1. then
    invalid_arg
      (Printf.sprintf "Generate.random_fork_join: latency_prob must be in [0, 1] (got %g)"
         latency_prob);
  check_latency "random_fork_join" ~param:"max_latency" max_latency;
  let st = Random.State.make [| seed; 0x5eed |] in
  let b = Dag.Builder.create () in
  let maybe_latency blk =
    if Random.State.float st 1.0 < latency_prob then
      Block.with_latency b (2 + Random.State.int st (max_latency - 1)) blk
    else blk
  in
  (* Recursive series-parallel shape with a fuel budget.  Fuel is split
     unevenly at forks to produce irregular dags. *)
  let rec go fuel =
    if fuel <= 1 then maybe_latency (Block.vertex b)
    else
      match Random.State.int st 3 with
      | 0 ->
          (* sequence of two sub-blocks *)
          let f1 = 1 + Random.State.int st fuel in
          Block.seq b (go f1) (go (max 1 (fuel - f1)))
      | 1 ->
          (* fork-join of two sub-blocks *)
          let f1 = 1 + Random.State.int st fuel in
          maybe_latency (Block.fork2 b (go f1) (go (max 1 (fuel - f1))))
      | _ -> maybe_latency (Block.chain b (1 + Random.State.int st (min fuel 5)))
  in
  Block.finish b (go (max 1 size_hint))

let resume_burst ~n ~leaf_work ~latency =
  check_min "resume_burst" "n" ~min:1 n;
  check_min "resume_burst" "leaf_work" ~min:1 leaf_work;
  check_latency "resume_burst" latency;
  let b = Dag.Builder.create () in
  let spine = Array.init n (fun i -> Dag.Builder.add_vertex ~label:(Printf.sprintf "issue %d" i) b) in
  for i = 0 to n - 2 do
    (* Left child: the spine continuation; added first so it has priority. *)
    Dag.Builder.add_edge b spine.(i) spine.(i + 1)
  done;
  let chains =
    Array.init n (fun i ->
        let c = Block.chain ~label:"work" b leaf_work in
        (* The i-th operation is issued i rounds after the first and takes
           latency + (n - i) rounds, so all complete at round latency + n. *)
        Dag.Builder.add_edge ~weight:(latency + (n - i)) b spine.(i) c.Block.entry;
        c)
  in
  (* Pairwise join tree over the chain exits, then a final join with the
     spine's own exit path. *)
  let rec join_up = function
    | [] -> assert false
    | [ v ] -> v
    | vs ->
        let rec pair = function
          | [] -> []
          | [ v ] -> [ v ]
          | v1 :: v2 :: rest ->
              let j = Dag.Builder.add_vertex ~label:"join" b in
              Dag.Builder.add_edge b v1 j;
              Dag.Builder.add_edge b v2 j;
              j :: pair rest
        in
        join_up (pair vs)
  in
  let chains_join = join_up (Array.to_list (Array.map (fun c -> c.Block.exit) chains)) in
  let final = Dag.Builder.add_vertex ~label:"done" b in
  Dag.Builder.add_edge b spine.(n - 1) final;
  Dag.Builder.add_edge b chains_join final;
  let g = Dag.Builder.build b in
  Check.check_exn g;
  g

let diamond () =
  (* Built by hand so the ids are predictable: 0 = fork, 1 = left,
     2 = right, 3 = join. *)
  let b = Dag.Builder.create () in
  let fork = Dag.Builder.add_vertex b in
  let left = Dag.Builder.add_vertex b in
  let right = Dag.Builder.add_vertex b in
  let join = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b fork left;
  Dag.Builder.add_edge b fork right;
  Dag.Builder.add_edge b left join;
  Dag.Builder.add_edge b right join;
  let g = Dag.Builder.build b in
  Check.check_exn g;
  g

let single_latency ~delta =
  check_latency "single_latency" ~param:"delta" delta;
  let b = Dag.Builder.create () in
  Block.finish b (Block.latency b delta)
