let map_reduce ~n ~leaf_work ~latency =
  if n < 1 then invalid_arg "Generate.map_reduce: n must be >= 1";
  if leaf_work < 1 then invalid_arg "Generate.map_reduce: leaf_work must be >= 1";
  let b = Dag.Builder.create () in
  let leaf i =
    let get = Block.latency ~label:(Printf.sprintf "getValue %d" i) b latency in
    let f = Block.chain ~label:"f" b leaf_work in
    Block.seq b get f
  in
  let leaves = Array.init n leaf in
  Block.finish b (Block.fork_tree b leaves)

let map_reduce_jitter ~seed ~n ~leaf_work ~min_latency ~max_latency =
  if n < 1 then invalid_arg "Generate.map_reduce_jitter: n must be >= 1";
  if leaf_work < 1 then invalid_arg "Generate.map_reduce_jitter: leaf_work must be >= 1";
  if min_latency < 2 || max_latency < min_latency then
    invalid_arg "Generate.map_reduce_jitter: need 2 <= min_latency <= max_latency";
  let st = Random.State.make [| seed; 0x717 |] in
  let b = Dag.Builder.create () in
  let leaf i =
    let delta = min_latency + Random.State.int st (max_latency - min_latency + 1) in
    let get = Block.latency ~label:(Printf.sprintf "getValue %d" i) b delta in
    Block.seq b get (Block.chain ~label:"f" b leaf_work)
  in
  Block.finish b (Block.fork_tree b (Array.init n leaf))

let server ~n ~f_work ~latency =
  if n < 1 then invalid_arg "Generate.server: n must be >= 1";
  if f_work < 1 then invalid_arg "Generate.server: f_work must be >= 1";
  let b = Dag.Builder.create () in
  let rec serve k =
    let get = Block.latency ~label:(Printf.sprintf "getInput %d" k) b latency in
    let rest =
      if k = n - 1 then Block.vertex ~label:"done" b
      else
        let f = Block.chain ~label:"f" b f_work in
        Block.fork2 ~fork_label:"serve-fork" ~join_label:"g" b f (serve (k + 1))
    in
    Block.seq b get rest
  in
  Block.finish b (serve 0)

let fib ?(leaf_work = 1) ~n () =
  let b = Dag.Builder.create () in
  let rec go n =
    if n < 2 then Block.chain ~label:"base" b leaf_work
    else Block.fork2 b (go (n - 1)) (go (n - 2))
  in
  Block.finish b (go n)

let chain ?(latency_every = 0) ?(latency = 2) ~n () =
  if n < 2 then invalid_arg "Generate.chain: n must be >= 2";
  let b = Dag.Builder.create () in
  let first = Dag.Builder.add_vertex b in
  let rec extend prev i =
    if i = n then prev
    else begin
      let v = Dag.Builder.add_vertex b in
      let weight = if latency_every > 0 && i mod latency_every = 0 then latency else 1 in
      Dag.Builder.add_edge ~weight b prev v;
      extend v (i + 1)
    end
  in
  ignore (extend first 1);
  let g = Dag.Builder.build b in
  Check.check_exn g;
  g

let parallel_chains ~k ~len =
  if k < 1 then invalid_arg "Generate.parallel_chains: k must be >= 1";
  let b = Dag.Builder.create () in
  let chains = Array.init k (fun _ -> Block.chain b len) in
  Block.finish b (Block.fork_tree b chains)

let pipeline ~stages ~items ~latency =
  if stages < 1 then invalid_arg "Generate.pipeline: stages must be >= 1";
  if items < 1 then invalid_arg "Generate.pipeline: items must be >= 1";
  let b = Dag.Builder.create () in
  let item _ =
    let stage _ = Block.vertex ~label:"stage" b in
    let rec go i acc =
      if i = stages then acc
      else go (i + 1) (Block.seq b acc (Block.with_latency b latency (stage i)))
    in
    go 1 (stage 0)
  in
  Block.finish b (Block.fork_tree b (Array.init items item))

let random_fork_join ~seed ~size_hint ~latency_prob ~max_latency =
  if latency_prob < 0. || latency_prob > 1. then
    invalid_arg "Generate.random_fork_join: latency_prob must be in [0, 1]";
  if max_latency < 2 then invalid_arg "Generate.random_fork_join: max_latency must be >= 2";
  let st = Random.State.make [| seed; 0x5eed |] in
  let b = Dag.Builder.create () in
  let maybe_latency blk =
    if Random.State.float st 1.0 < latency_prob then
      Block.with_latency b (2 + Random.State.int st (max_latency - 1)) blk
    else blk
  in
  (* Recursive series-parallel shape with a fuel budget.  Fuel is split
     unevenly at forks to produce irregular dags. *)
  let rec go fuel =
    if fuel <= 1 then maybe_latency (Block.vertex b)
    else
      match Random.State.int st 3 with
      | 0 ->
          (* sequence of two sub-blocks *)
          let f1 = 1 + Random.State.int st fuel in
          Block.seq b (go f1) (go (max 1 (fuel - f1)))
      | 1 ->
          (* fork-join of two sub-blocks *)
          let f1 = 1 + Random.State.int st fuel in
          maybe_latency (Block.fork2 b (go f1) (go (max 1 (fuel - f1))))
      | _ -> maybe_latency (Block.chain b (1 + Random.State.int st (min fuel 5)))
  in
  Block.finish b (go (max 1 size_hint))

let resume_burst ~n ~leaf_work ~latency =
  if n < 1 then invalid_arg "Generate.resume_burst: n must be >= 1";
  if leaf_work < 1 then invalid_arg "Generate.resume_burst: leaf_work must be >= 1";
  if latency < 2 then invalid_arg "Generate.resume_burst: latency must be >= 2";
  let b = Dag.Builder.create () in
  let spine = Array.init n (fun i -> Dag.Builder.add_vertex ~label:(Printf.sprintf "issue %d" i) b) in
  for i = 0 to n - 2 do
    (* Left child: the spine continuation; added first so it has priority. *)
    Dag.Builder.add_edge b spine.(i) spine.(i + 1)
  done;
  let chains =
    Array.init n (fun i ->
        let c = Block.chain ~label:"work" b leaf_work in
        (* The i-th operation is issued i rounds after the first and takes
           latency + (n - i) rounds, so all complete at round latency + n. *)
        Dag.Builder.add_edge ~weight:(latency + (n - i)) b spine.(i) c.Block.entry;
        c)
  in
  (* Pairwise join tree over the chain exits, then a final join with the
     spine's own exit path. *)
  let rec join_up = function
    | [] -> assert false
    | [ v ] -> v
    | vs ->
        let rec pair = function
          | [] -> []
          | [ v ] -> [ v ]
          | v1 :: v2 :: rest ->
              let j = Dag.Builder.add_vertex ~label:"join" b in
              Dag.Builder.add_edge b v1 j;
              Dag.Builder.add_edge b v2 j;
              j :: pair rest
        in
        join_up (pair vs)
  in
  let chains_join = join_up (Array.to_list (Array.map (fun c -> c.Block.exit) chains)) in
  let final = Dag.Builder.add_vertex ~label:"done" b in
  Dag.Builder.add_edge b spine.(n - 1) final;
  Dag.Builder.add_edge b chains_join final;
  let g = Dag.Builder.build b in
  Check.check_exn g;
  g

let diamond () =
  (* Built by hand so the ids are predictable: 0 = fork, 1 = left,
     2 = right, 3 = join. *)
  let b = Dag.Builder.create () in
  let fork = Dag.Builder.add_vertex b in
  let left = Dag.Builder.add_vertex b in
  let right = Dag.Builder.add_vertex b in
  let join = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b fork left;
  Dag.Builder.add_edge b fork right;
  Dag.Builder.add_edge b left join;
  Dag.Builder.add_edge b right join;
  let g = Dag.Builder.build b in
  Check.check_exn g;
  g

let single_latency ~delta =
  let b = Dag.Builder.create () in
  Block.finish b (Block.latency b delta)
