(** Work, span and related measures of weighted dags (Section 2).

    - {e work} [W] is the number of vertices; edge weights do {e not} count
      toward the work.
    - {e span} [S] is the longest {e weighted} path, i.e. the maximum over
      paths of the sum of edge weights along the path.  On a dag with only
      light edges this is the edge-count span of the classical model. *)

val work : Dag.t -> int

val span : Dag.t -> int
(** Longest weighted path from the root.  A single-vertex dag has span 0. *)

val unweighted_span : Dag.t -> int
(** Longest path counting every edge as weight 1 (the classical span). *)

val weighted_depth : Dag.t -> int array
(** [weighted_depth g] is [d] with [d.(v)] the longest weighted path from
    the root to [v] — the quantity written [d_G(v)] in Section 4.1. *)

val parallelism : Dag.t -> float
(** [work / span] (infinite if the span is 0). *)

val total_latency : Dag.t -> int
(** Sum over heavy edges of [weight - 1]: the total latency that a fully
    sequential, blocking execution would wait out. *)

val num_heavy_edges : Dag.t -> int

val critical_path_latency : Dag.t -> int
(** Maximum over root-to-final paths of the summed [weight - 1] of heavy
    edges on the path: latency that no scheduler can hide. *)
