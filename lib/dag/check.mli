(** Structural well-formedness checks for weighted dags (Section 2).

    The paper assumes: a unique root and unique final vertex, out-degree at
    most two, every target of a heavy edge has in-degree exactly one, and
    determinism (a static property of our representation).  The schedulers
    in [lhws_core] require these assumptions; run {!well_formed} on any dag
    built by hand before scheduling it. *)

type violation =
  | Multiple_roots of Dag.vertex list
  | Multiple_finals of Dag.vertex list
  | Out_degree_exceeded of Dag.vertex * int
  | Heavy_target_in_degree of Dag.vertex * int
      (** Target of a heavy edge whose in-degree is not one. *)
  | Unreachable_from_root of Dag.vertex
  | Cannot_reach_final of Dag.vertex

val pp_violation : Format.formatter -> violation -> unit

val violations : Dag.t -> violation list
(** All violations, in vertex order; [[]] iff the dag is well-formed. *)

val well_formed : Dag.t -> bool

val check_exn : Dag.t -> unit
(** @raise Invalid_argument describing the first violation, if any. *)
