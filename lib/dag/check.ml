type violation =
  | Multiple_roots of Dag.vertex list
  | Multiple_finals of Dag.vertex list
  | Out_degree_exceeded of Dag.vertex * int
  | Heavy_target_in_degree of Dag.vertex * int
  | Unreachable_from_root of Dag.vertex
  | Cannot_reach_final of Dag.vertex

let pp_violation ppf = function
  | Multiple_roots vs ->
      Format.fprintf ppf "multiple roots: %a"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
        vs
  | Multiple_finals vs ->
      Format.fprintf ppf "multiple final vertices: %a"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
        vs
  | Out_degree_exceeded (v, d) -> Format.fprintf ppf "vertex %d has out-degree %d > 2" v d
  | Heavy_target_in_degree (v, d) ->
      Format.fprintf ppf "vertex %d is a heavy-edge target but has in-degree %d <> 1" v d
  | Unreachable_from_root v -> Format.fprintf ppf "vertex %d is unreachable from the root" v
  | Cannot_reach_final v -> Format.fprintf ppf "vertex %d cannot reach the final vertex" v

(* Reachability along a neighbour function, as a boolean array. *)
let reach n start neighbours =
  let seen = Array.make n false in
  let stack = Stack.create () in
  Stack.push start stack;
  seen.(start) <- true;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    neighbours v (fun c ->
        if not seen.(c) then begin
          seen.(c) <- true;
          Stack.push c stack
        end)
  done;
  seen

let violations g =
  let n = Dag.num_vertices g in
  let acc = ref [] in
  let add v = acc := v :: !acc in
  let roots = ref [] and finals = ref [] in
  for v = n - 1 downto 0 do
    if Dag.in_degree g v = 0 then roots := v :: !roots;
    if Dag.out_degree g v = 0 then finals := v :: !finals
  done;
  (match !roots with [ _ ] -> () | vs -> add (Multiple_roots vs));
  (match !finals with [ _ ] -> () | vs -> add (Multiple_finals vs));
  Dag.iter_vertices g (fun v ->
      let d = Dag.out_degree g v in
      if d > 2 then add (Out_degree_exceeded (v, d));
      if Dag.is_heavy_target g v && Dag.in_degree g v <> 1 then
        add (Heavy_target_in_degree (v, Dag.in_degree g v)));
  let fwd = reach n (Dag.root g) (fun v f -> Array.iter (fun (c, _) -> f c) (Dag.out_edges g v)) in
  let bwd = reach n (Dag.final g) (fun v f -> Array.iter (fun (c, _) -> f c) (Dag.in_edges g v)) in
  Dag.iter_vertices g (fun v ->
      if not fwd.(v) then add (Unreachable_from_root v);
      if not bwd.(v) then add (Cannot_reach_final v));
  List.rev !acc

let well_formed g = violations g = []

let check_exn g =
  match violations g with
  | [] -> ()
  | v :: _ -> invalid_arg (Format.asprintf "Dag.Check: %a" pp_violation v)
