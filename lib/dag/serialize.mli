(** Textual serialization of weighted dags.

    Line-oriented format, stable across versions:
    {v
    dag <num-vertices>
    v <id> <label>          (one line per labelled vertex; optional)
    e <src> <dst> <weight>  (one line per edge, in out-edge order)
    v}
    Comments start with [#]; blank lines are ignored. *)

val to_string : Dag.t -> string

val of_string : string -> Dag.t
(** Parses {!to_string} output (or hand-written files).
    @raise Invalid_argument on malformed input or if the result is cyclic. *)

val save : string -> Dag.t -> unit
val load : string -> Dag.t
