module type POOL = sig
  type t

  val name : string
  val create : ?workers:int -> unit -> t
  val shutdown : t -> unit
  val run : t -> (unit -> 'a) -> 'a
  val fork2 : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
  val sleep : t -> float -> unit
  val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit

  val parallel_map_reduce :
    t -> lo:int -> hi:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> id:'a -> 'a
end

type pool = (module POOL)

module Lhws_instance = struct
  include Lhws_runtime.Lhws_pool

  (* Re-pin optional arguments to the POOL signature. *)
  let create ?workers () = create ?workers ()
  let name = "lhws"
end

module Ws_instance = struct
  include Lhws_runtime.Ws_pool

  let name = "ws"
end

let lhws : pool = (module Lhws_instance)
let ws : pool = (module Ws_instance)

let by_name = function
  | "lhws" -> lhws
  | "ws" -> ws
  | s -> invalid_arg (Printf.sprintf "Pool_intf.by_name: unknown pool %S (want lhws|ws)" s)
