module type POOL = sig
  type t

  val name : string
  val create : ?name:string -> ?workers:int -> unit -> t
  val shutdown : t -> unit
  val run : t -> (unit -> 'a) -> 'a
  val async : t -> (unit -> 'a) -> 'a Lhws_runtime.Promise.t
  val await : t -> 'a Lhws_runtime.Promise.t -> 'a
  val fork2 : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
  val sleep : t -> float -> unit
  val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit

  val parallel_map_reduce :
    t -> lo:int -> hi:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> id:'a -> 'a

  val stats : t -> Lhws_runtime.Scheduler_core.stats
  val set_tracer : t -> Lhws_runtime.Tracing.t -> unit
  val register_shed_counter : t -> (unit -> int) -> unit
  val submit : t -> (unit -> unit) -> unit

  val scavenge_source :
    t -> Lhws_runtime.Scheduler_core.scavenge_source option

  val set_scavenge :
    t ->
    ?mode:Lhws_runtime.Scheduler_core.steal_mode ->
    Lhws_runtime.Scheduler_core.scavenge_source ->
    bool
end

type pool = (module POOL)

module Lhws_instance = struct
  include Lhws_runtime.Lhws_pool

  (* Re-pin optional arguments to the POOL signature. *)
  let create ?name ?workers () = create ?name ?workers ()
  let name = "lhws"

  (* Lhws_pool's await suspends the fiber and needs no pool handle. *)
  let await _t p = await p

  let scavenge_source t = Some (Lhws_runtime.Lhws_pool.scavenge_source t)

  let set_scavenge t ?mode src =
    Lhws_runtime.Lhws_pool.set_scavenge t ?mode src;
    true
end

module Ws_instance = struct
  include Lhws_runtime.Ws_pool

  let create ?name ?workers () = create ?name ?workers ()
  let name = "ws"
  let scavenge_source t = Some (Lhws_runtime.Ws_pool.scavenge_source t)

  let set_scavenge t ?mode src =
    Lhws_runtime.Ws_pool.set_scavenge t ?mode src;
    true
end

(* Steal-half variants of the stealing pools, so POOL-generic workloads,
   benches and the conformance matrix can exercise both steal modes by
   name.  The lhws variant keeps the default (analyzed) steal policy. *)
module Lhws_steal_half_instance = struct
  include Lhws_instance

  let create ?name ?workers () =
    Lhws_runtime.Lhws_pool.create ?name ?workers
      ~steal_mode:Lhws_runtime.Scheduler_core.Steal_half ()

  let name = "lhws-steal-half"
end

module Ws_steal_half_instance = struct
  include Ws_instance

  let create ?name ?workers () =
    Lhws_runtime.Ws_pool.create ?name ?workers
      ~steal_mode:Lhws_runtime.Scheduler_core.Steal_half ()

  let name = "ws-steal-half"
end

(* Age-fair resume variant of the lhws pool: resumed continuations are
   serviced oldest-batch-first through per-worker FIFO lanes instead of
   newest-first — the starvation-bounding leg of the fairness study. *)
module Lhws_aged_fifo_instance = struct
  include Lhws_instance

  let create ?name ?workers () =
    Lhws_runtime.Lhws_pool.create ?name ?workers
      ~resume_order:Lhws_runtime.Scheduler_core.Aged_fifo ()

  let name = "lhws-aged-fifo"
end

module Threaded_instance = struct
  include Lhws_runtime.Threaded_pool

  (* [workers] bounds concurrency only loosely here: threads are created
     per task, so keep the default generous cap and validate the arity. *)
  let create ?name ?(workers = 2) () =
    if workers < 1 then invalid_arg "Threaded_pool.create: workers must be >= 1";
    create ?name ()

  let parallel_for t ~lo ~hi body = parallel_for t ?grain:None ~lo ~hi body

  let parallel_map_reduce t ~lo ~hi ~map ~combine ~id =
    parallel_map_reduce t ?grain:None ~lo ~hi ~map ~combine ~id

  let name = "threads"

  (* A thread-per-task pool has no queued-but-unstarted work to steal
     (tasks become threads immediately), and its threads never idle-loop,
     so it can neither donate nor scavenge. *)
  let scavenge_source _t = None
  let set_scavenge _t ?mode:_ _src = false
end

let lhws : pool = (module Lhws_instance)
let ws : pool = (module Ws_instance)
let threads : pool = (module Threaded_instance)
let lhws_steal_half : pool = (module Lhws_steal_half_instance)
let ws_steal_half : pool = (module Ws_steal_half_instance)
let lhws_aged_fifo : pool = (module Lhws_aged_fifo_instance)

let by_name = function
  | "lhws" -> lhws
  | "ws" -> ws
  | "threads" -> threads
  | "lhws-steal-half" -> lhws_steal_half
  | "ws-steal-half" -> ws_steal_half
  | "lhws-aged-fifo" -> lhws_aged_fifo
  | s ->
      invalid_arg
        (Printf.sprintf
           "Pool_intf.by_name: unknown pool %S (want \
            lhws|ws|threads|lhws-steal-half|ws-steal-half|lhws-aged-fifo)"
           s)
