let modulus = 1_000_000_007

let dag ~n ~leaf_work ~latency = Lhws_dag.Generate.map_reduce ~n ~leaf_work ~latency

type result = { value : int; elapsed : float }

let run_on (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) ~n ~latency ~fib_n =
  let t0 = Unix.gettimeofday () in
  let value =
    P.run pool (fun () ->
        P.parallel_map_reduce pool ~lo:0 ~hi:n
          ~map:(fun _ ->
            (* getValue: the remote fetch *)
            P.sleep pool latency;
            Fib.seq fib_n mod modulus)
          ~combine:(fun a b -> (a + b) mod modulus)
          ~id:0)
  in
  { value; elapsed = Unix.gettimeofday () -. t0 }

let reference ~n ~fib_n = n * (Fib.seq fib_n mod modulus) mod modulus
