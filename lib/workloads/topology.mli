(** Micropools: several scheduler pools coexisting in one process, each
    owning a {e task class}, with optional cross-pool scavenging.

    One flat pool cannot isolate latency-sensitive traffic from batch
    compute: a 500 ms batch job ahead of a 1 ms RPC handler in the same
    deque adds itself to the handler's tail latency.  A topology gives
    each class its own pool (its own worker domains, timers, stats,
    tracing — different policies and sizes side by side, LHWS next to
    thread-per-task), so the latency class's p99 is bounded by its own
    work.  Submission is {e pool-pinned}: {!submit}[ ~class_] routes the
    thunk to the owning pool and it can only ever start there.

    Isolation wastes idle cycles; {e scavenging} gives them back without
    giving up the pinning direction that matters.  A pool whose spec
    names a donor class raids that sibling when its own workers idle
    (after local steals fail, before deep backoff): only fresh,
    not-yet-started tasks cross, and they become native tasks of the
    thief.  Typical shape: the latency pool scavenges the batch pool —
    batch throughput improves when RPC traffic is quiet, while batch
    work can never invade the latency pool.  Scavenging is off unless a
    spec asks for it.

    Cross-group steals cost more than local ones ("A new analysis of
    Work Stealing with latency", arXiv 1805.00857), which is why the
    scavenge path is a last resort below local stealing, and why resumes
    stay in their home pool (arXiv 2111.04994: steals dominate cache
    cost). *)

type class_ =
  | Latency  (** short, deadline-sensitive work (e.g. RPC handlers) *)
  | Batch  (** long compute jobs (e.g. map-reduce legs) *)
  | Custom of string

val class_name : class_ -> string
(** ["latency"], ["batch"], or the custom string. *)

type spec
(** One member pool: class, pool kind, size, and an optional scavenge
    edge. *)

val spec :
  ?pool:Pool_intf.pool ->
  ?workers:int ->
  ?scavenges:class_ ->
  ?scavenge_mode:Lhws_runtime.Scheduler_core.steal_mode ->
  class_ ->
  spec
(** Defaults: the lhws pool kind, 2 workers, no scavenging,
    [Steal_one].  [scavenges] names the {e donor} class this pool may
    raid when idle. *)

type t

val create : ?name:string -> spec list -> t
(** Creates every member pool (registered as ["<name>.<class>"] in
    {!Lhws_runtime.Scheduler_core.Registry}) and wires the scavenge
    edges.  Each member is held inside its [run] by a driver domain for
    the topology's lifetime, so all of its configured workers serve
    from the moment [create] returns — nobody needs to (or may) call
    the member's own [run].  On a bad edge (unknown or self donor,
    donor with nothing stealable, thief that cannot scavenge, duplicate
    class) every already-created pool is shut down before raising.
    @raise Invalid_argument as above. *)

val shutdown : t -> unit
(** Stops the driver domains and shuts down every member pool.
    Idempotent. *)

val with_topology : ?name:string -> spec list -> (t -> 'a) -> 'a

val name : t -> string

val classes : t -> class_ list
(** In spec order. *)

val pool_names : t -> (class_ * string) list
(** Class to pool-kind name (["lhws"], ["ws"], ...). *)

val submit : t -> class_:class_ -> (unit -> unit) -> unit
(** Pool-pinned submission: the thunk starts on the class's own pool,
    never elsewhere.  Safe from any thread — including another member
    pool's workers, which is how a latency handler hands compute to the
    batch class.
    @raise Invalid_argument on an unknown class. *)

val dispatcher : t -> class_:class_ -> (unit -> unit) -> unit
(** [dispatcher t ~class_] is [submit t ~class_] with the member lookup
    done once — the shape serving layers take (see
    {!Lhws_net.Listener.serve}'s [dispatch]). *)

val run : t -> class_:class_ -> (unit -> 'a) -> 'a
(** Runs the thunk as a task of the class's pool (via the pool-pinned
    {!submit} path — the member's own [run] is held by its driver) and
    blocks the calling thread until it finishes, re-raising its
    exception.  Call from outside the topology's pools; inside them,
    use the member's [async]/[await] through {!use} instead of blocking
    a worker. *)

val stats : t -> (class_ * Lhws_runtime.Scheduler_core.stats) list
(** Per-member stats, in spec order.  Across a topology the scavenge
    books balance: the sum of [tasks_scavenged] over thieves equals the
    sum of [tasks_donated] over donors. *)

(** {2 Escape hatch} *)

type 'a user = { use : 'p. (module Pool_intf.POOL with type t = 'p) -> 'p -> 'a }

val use : t -> class_:class_ -> 'a user -> 'a
(** Unpacks the member pool for operations beyond the closed set above
    (e.g. registering an I/O poller, async/await from inside its
    fibers).  The member is already inside its [run] (held by the
    topology's driver domain), so calling [P.run] on it raises; use the
    task-level operations. *)
