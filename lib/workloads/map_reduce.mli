(** The distributed map-and-reduce benchmark (Section 5 / Figure 8, and the
    workload of the paper's evaluation): [n] values live on remote servers;
    fetching each incurs latency; each fetched value is mapped with a
    Fibonacci computation; results are summed modulo a large constant.

    Three guises: the weighted dag (for the simulator), a runtime program
    (for the pools), and a sequential reference. *)

val modulus : int
(** The "large constant" results are summed modulo. *)

val dag : n:int -> leaf_work:int -> latency:int -> Lhws_dag.Dag.t
(** Simulator form: see {!Lhws_dag.Generate.map_reduce}.  [U = n]. *)

type result = { value : int; elapsed : float }

val run_on :
  (module Pool_intf.POOL with type t = 'p) ->
  'p ->
  n:int ->
  latency:float ->
  fib_n:int ->
  result
(** Runtime form, from outside the pool: fetch [n] values (each a {e sleep}
    of [latency] seconds followed by returning [fib_n], as in the paper's
    prototype, which "simulates a latency of delta milliseconds by sleeping
    ... and then immediately returning 30"), compute [fib] of each, sum
    modulo {!modulus}.  Wall-clock time is measured around the pool run. *)

val reference : n:int -> fib_n:int -> int
(** Sequential reference value ([n * fib fib_n mod modulus]). *)
