(** Mock web crawler: a latency+compute workload with irregular, data-driven
    parallelism (unlike the regular map-reduce fan-out).

    A synthetic "web" of [pages] is generated deterministically from
    [seed]; each fetch sleeps [latency] seconds (the network round trip),
    each parse performs [fib parse_work] of computation, and newly
    discovered links are crawled in parallel.  The crawl frontier is
    shared, so this also exercises cross-fiber synchronization. *)

type web
(** Immutable synthetic link graph. *)

val make_web : seed:int -> pages:int -> max_links:int -> web

val links : web -> int -> int list
(** Out-links of a page. *)

val reachable : web -> int
(** Number of pages reachable from page 0 — what a crawl must visit. *)

type result = { visited : int; checksum : int; elapsed : float }

val crawl_on :
  (module Pool_intf.POOL with type t = 'p) ->
  'p ->
  web ->
  latency:float ->
  parse_work:int ->
  result
(** Crawls from page 0.  [visited] always equals [reachable web];
    [checksum] is order-independent. *)
