(** First-class pool interface: workloads are written once against [POOL]
    and run on either the latency-hiding pool or the blocking baseline. *)

module type POOL = sig
  type t

  val name : string
  val create : ?workers:int -> unit -> t
  val shutdown : t -> unit
  val run : t -> (unit -> 'a) -> 'a
  val fork2 : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
  val sleep : t -> float -> unit
  val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit

  val parallel_map_reduce :
    t -> lo:int -> hi:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> id:'a -> 'a
end

type pool = (module POOL)

val lhws : pool
(** {!Lhws_runtime.Lhws_pool}: suspending fibers, latency hidden. *)

val ws : pool
(** {!Lhws_runtime.Ws_pool}: blocking sleeps, latency not hidden. *)

val by_name : string -> pool
(** ["lhws"] or ["ws"].  @raise Invalid_argument otherwise. *)
