(** First-class pool interface: workloads are written once against [POOL]
    and run on the latency-hiding pool, the blocking baseline, or the
    thread-per-task pool.

    Every operation takes the pool handle, including [await] (the
    baseline's helping join needs it to find other work); the
    latency-hiding instance simply ignores it there.  [stats] returns the
    unified {!Lhws_runtime.Scheduler_core.stats} record from every pool,
    with degenerate values where a counter does not apply. *)

module type POOL = sig
  type t

  val name : string

  (** [create ?name] registers the instance in
      {!Lhws_runtime.Scheduler_core.Registry} under [name] (topologies
      name their member pools through it). *)
  val create : ?name:string -> ?workers:int -> unit -> t
  val shutdown : t -> unit
  val run : t -> (unit -> 'a) -> 'a

  val async : t -> (unit -> 'a) -> 'a Lhws_runtime.Promise.t
  (** Spawns a task; must be called from within {!run} (from any thread
      for the thread-per-task pool). *)

  val await : t -> 'a Lhws_runtime.Promise.t -> 'a
  (** Joins the promise: suspends the fiber (lhws), helps with other work
      (ws), or blocks the thread (threads).  Re-raises the task's
      exception. *)

  val fork2 : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
  val sleep : t -> float -> unit
  val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit

  val parallel_map_reduce :
    t -> lo:int -> hi:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> id:'a -> 'a

  val stats : t -> Lhws_runtime.Scheduler_core.stats
  val set_tracer : t -> Lhws_runtime.Tracing.t -> unit

  val register_shed_counter : t -> (unit -> int) -> unit
  (** Publishes a monotone counter into the [conns_shed] field of
      {!stats} — serving layers report overload-shed connections through
      this.  Thread-safe; callable from running tasks. *)

  val submit : t -> (unit -> unit) -> unit
  (** Pool-pinned external submission: the thunk is guaranteed to start
      on this pool.  Safe from any thread, unlike {!async}. *)

  val scavenge_source :
    t -> Lhws_runtime.Scheduler_core.scavenge_source option
  (** The pool's stealable surface, or [None] when it has nothing a
      sibling could steal (thread-per-task: tasks become threads
      immediately). *)

  val set_scavenge :
    t ->
    ?mode:Lhws_runtime.Scheduler_core.steal_mode ->
    Lhws_runtime.Scheduler_core.scavenge_source ->
    bool
  (** Points this pool's idle workers at a sibling's source; returns
      [false] when this pool cannot scavenge (thread-per-task: its
      threads never idle-loop).
      @raise Invalid_argument when handed the pool's own source. *)
end

type pool = (module POOL)

(** The instances are exposed with their concrete pool types so callers
    can mix POOL-generic code with pool-specific setup (e.g. registering
    an I/O poller on an {!Lhws_instance}-created pool). *)

module Lhws_instance : POOL with type t = Lhws_runtime.Lhws_pool.t
module Ws_instance : POOL with type t = Lhws_runtime.Ws_pool.t
module Threaded_instance : POOL with type t = Lhws_runtime.Threaded_pool.t

module Lhws_steal_half_instance : POOL with type t = Lhws_runtime.Lhws_pool.t
(** {!Lhws_instance} with batched steal-half stealing enabled. *)

module Ws_steal_half_instance : POOL with type t = Lhws_runtime.Ws_pool.t
(** {!Ws_instance} with batched steal-half stealing enabled. *)

module Lhws_aged_fifo_instance : POOL with type t = Lhws_runtime.Lhws_pool.t
(** {!Lhws_instance} with [Aged_fifo] resume fairness: resumed
    continuations are serviced oldest-batch-first through per-worker
    FIFO lanes, bounding how stale any suspended request can get under
    saturation. *)

val lhws : pool
(** {!Lhws_runtime.Lhws_pool}: suspending fibers, latency hidden. *)

val ws : pool
(** {!Lhws_runtime.Ws_pool}: blocking sleeps, latency not hidden. *)

val threads : pool
(** {!Lhws_runtime.Threaded_pool}: a thread per task, latency hidden by
    oversubscription. *)

val lhws_steal_half : pool
val ws_steal_half : pool
val lhws_aged_fifo : pool

val by_name : string -> pool
(** ["lhws"], ["ws"], ["threads"], ["lhws-steal-half"],
    ["ws-steal-half"] or ["lhws-aged-fifo"].
    @raise Invalid_argument otherwise. *)
