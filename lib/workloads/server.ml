let dag ~n ~f_work ~latency = Lhws_dag.Generate.server ~n ~f_work ~latency

type result = { value : int; elapsed : float }

let run_on (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) ~n ~latency ~fib_n =
  let t0 = Unix.gettimeofday () in
  let value =
    P.run pool (fun () ->
        (* server(f, g) of Figure 10: get input, fork f(input) alongside the
           recursive server, combine with g. *)
        let rec serve k =
          if k = n then 0
          else begin
            P.sleep pool latency (* getInput *);
            let fx, rest =
              P.fork2 pool
                (fun () -> Fib.seq fib_n mod Map_reduce.modulus)
                (fun () -> serve (k + 1))
            in
            (fx + rest) mod Map_reduce.modulus
          end
        in
        serve 0)
  in
  { value; elapsed = Unix.gettimeofday () -. t0 }
