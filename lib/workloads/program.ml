module Dag = Lhws_dag.Dag
module Block = Lhws_dag.Block
open Lhws_core

type 'a t =
  | Pure : 'a -> 'a t
  | Map : ('b -> 'a) * 'b t -> 'a t
  | Work : int * 'a t -> 'a t
  | Latency : int * 'a t -> 'a t
  | Fork2 : 'b t * 'c t * ('b -> 'c -> 'a) -> 'a t
  | Seq_fork : 'x t * int * ('x -> 'b) * 'c t * ('b -> 'c -> 'a) -> 'a t
      (* prefix; then fork: the continuation applies the function to the
         prefix's value ([int] units of work) while the spawned branch runs
         independently; join combines.  The construct Figure 10 needs:
         the spawned branch is only enabled after the prefix. *)

let return x = Pure x
let map f p = Map (f, p)

let work k p =
  if k < 1 then invalid_arg "Program.work: k must be >= 1";
  Work (k, p)

let latency delta p =
  if delta < 2 then invalid_arg "Program.latency: delta must be >= 2";
  Latency (delta, p)

let fork2 b c f = Fork2 (b, c, f)

let seq_fork2 prefix ~work:k ~f right g =
  if k < 1 then invalid_arg "Program.seq_fork2: work must be >= 1";
  Seq_fork (prefix, k, f, right, g)

let rec fork_list : type b a. b t list -> (b list -> a) -> a t =
 fun ps combine ->
  match ps with
  | [] -> invalid_arg "Program.fork_list: empty list"
  | [ p ] -> Map ((fun x -> combine [ x ]), p)
  | ps ->
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | x :: rest -> split (k - 1) (x :: acc) rest
        | [] -> assert false
      in
      let half = List.length ps / 2 in
      let left, right = split half [] ps in
      Fork2 (fork_list left Fun.id, fork_list right Fun.id, fun l r -> combine (l @ r))

let rec value : type a. a t -> a = function
  | Pure x -> x
  | Map (f, p) -> f (value p)
  | Work (_, p) -> value p
  | Latency (_, p) -> value p
  | Fork2 (b, c, f) -> f (value b) (value c)
  | Seq_fork (p, _, f, c, g) -> g (f (value p)) (value c)

let rec work_units : type a. a t -> int = function
  | Pure _ -> 1
  | Map (_, p) -> 1 + work_units p
  | Work (k, p) -> k + work_units p
  | Latency (_, p) -> 2 + work_units p
  | Fork2 (b, c, _) -> 2 + work_units b + work_units c
  | Seq_fork (p, k, _, c, _) -> work_units p + k + work_units c + 2

(* Structure-only compilation: one vertex per unit of work, Block
   combinators guarantee well-formedness. *)
let to_dag p =
  let b = Dag.Builder.create () in
  let rec go : type a. a t -> Block.block = function
    | Pure _ -> Block.vertex ~label:"pure" b
    | Map (_, p) -> Block.seq b (go p) (Block.vertex ~label:"map" b)
    | Work (k, p) -> Block.seq b (go p) (Block.chain ~label:"work" b k)
    | Latency (delta, p) -> Block.seq b (go p) (Block.latency ~label:"latency" b delta)
    | Fork2 (l, r, _) ->
        (* fork2's join vertex is the combine *)
        Block.fork2 ~join_label:"combine" b (go l) (go r)
    | Seq_fork (p, k, _, r, _) ->
        (* prefix, then a fork whose left branch applies the function *)
        let left = Block.chain ~label:"apply" b k in
        Block.seq b (go p) (Block.fork2 ~join_label:"combine" b left (go r))
  in
  Block.finish b (go p)

let simulate ?config p ~p:workers = Lhws_sim.run ?config (to_dag p) ~p:workers

let default_work_unit () =
  (* A short, optimizer-proof spin standing in for one round of work. *)
  let acc = ref 0 in
  for i = 1 to 500 do
    acc := (!acc * 31) + i
  done;
  Sys.opaque_identity !acc |> ignore

let run_on (type p) (module P : Pool_intf.POOL with type t = p) (pool : p)
    ?(work_unit = default_work_unit) ?(tick = 0.001) program =
  let rec eval : type a. a t -> a = function
    | Pure x ->
        work_unit ();
        x
    | Map (f, p) ->
        let x = eval p in
        work_unit ();
        f x
    | Work (k, p) ->
        let x = eval p in
        for _ = 1 to k do
          work_unit ()
        done;
        x
    | Latency (delta, p) ->
        let x = eval p in
        P.sleep pool (float_of_int delta *. tick);
        x
    | Fork2 (l, r, f) ->
        let lv, rv = P.fork2 pool (fun () -> eval l) (fun () -> eval r) in
        work_unit ();
        f lv rv
    | Seq_fork (p, k, f, r, g) ->
        let x = eval p in
        let lv, rv =
          P.fork2 pool
            (fun () ->
              for _ = 1 to k do
                work_unit ()
              done;
              f x)
            (fun () -> eval r)
        in
        work_unit ();
        g lv rv
  in
  P.run pool (fun () -> eval program)

(* server(f, g) of Figure 10: input = getInput(); if done, return id;
   else fork f(input) alongside the recursive server and combine with g.
   The recursive server sits on the spawned side of a [seq_fork2] whose
   prefix is the getInput — the next input cannot be requested until the
   previous one arrived, which is what makes U = 1. *)
let server ~n ~latency:delta ~f_work ~f ~g ~id =
  if n < 0 then invalid_arg "Program.server: n must be >= 0";
  let rec serve k =
    if k = n then return id
    else seq_fork2 (latency delta (return k)) ~work:f_work ~f (serve (k + 1)) g
  in
  serve 0

let dist_map_reduce ~n ~latency:delta ~leaf_work ~f ~g ~id =
  if n < 1 then invalid_arg "Program.dist_map_reduce: n must be >= 1";
  let leaf i = work leaf_work (map f (latency delta (return i))) in
  match List.init n leaf with
  | [] -> return id
  | leaves -> fork_list leaves (fun xs -> List.fold_left g id xs)
