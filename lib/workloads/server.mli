(** The "server" example (Section 5 / Figure 10): inputs arrive one at a
    time (each incurring latency); handling an input forks the processing
    of that input in parallel with accepting the next one; all results
    reduce at the end.  Suspension width 1: at most one input operation is
    outstanding at any time. *)

val dag : n:int -> f_work:int -> latency:int -> Lhws_dag.Dag.t
(** Simulator form: see {!Lhws_dag.Generate.server}.  [U = 1]. *)

type result = { value : int; elapsed : float }

val run_on :
  (module Pool_intf.POOL with type t = 'p) ->
  'p ->
  n:int ->
  latency:float ->
  fib_n:int ->
  result
(** Runtime form: [n] inputs, each obtained by sleeping [latency] seconds
    (the user typing), each processed with [fib fib_n] in parallel with the
    next input; results summed modulo {!Map_reduce.modulus}. *)
