module Core = Lhws_runtime.Scheduler_core

type class_ = Latency | Batch | Custom of string

let class_name = function Latency -> "latency" | Batch -> "batch" | Custom s -> s

type spec = {
  spec_class : class_;
  spec_pool : Pool_intf.pool;
  spec_workers : int;
  spec_scavenges : class_ option;
  spec_scavenge_mode : Core.steal_mode;
}

let spec ?(pool = Pool_intf.lhws) ?(workers = 2) ?scavenges
    ?(scavenge_mode = Core.Steal_one) class_ =
  {
    spec_class = class_;
    spec_pool = pool;
    spec_workers = workers;
    spec_scavenges = scavenges;
    spec_scavenge_mode = scavenge_mode;
  }

(* One member pool, existentially packaged: the class is the routing key,
   the module + handle pair is everything needed to talk to it.

   Each member also gets a {e driver} domain holding the pool inside
   [P.run] for the topology's lifetime.  Scheduler_core pools only run
   their worker 0 inside [run] (the caller becomes that worker), so a
   pool nobody runs serves with one worker missing — and externally
   submitted thunks round-robined to worker 0's inbox would never be
   picked up.  The driver's root task just awaits the stop promise:
   on the lhws pool the fiber suspends and worker 0 helps freely, on
   the ws pool the await IS the helping loop, on the thread-per-task
   pool it blocks the driver thread, which owns no work anyway. *)
type member =
  | Member : {
      m_class : class_;
      m_pool : (module Pool_intf.POOL with type t = 'p);
      m_handle : 'p;
      m_stop : unit Lhws_runtime.Promise.t;
      m_driver : unit Domain.t;
    }
      -> member

type t = { name : string; members : member list; shut : bool Atomic.t }

(* Polymorphic accessor: callers that need pool-typed operations beyond
   the closed set below unpack the member themselves through this. *)
type 'a user = { use : 'p. (module Pool_intf.POOL with type t = 'p) -> 'p -> 'a }

let member_class (Member m) = m.m_class

let find t class_ =
  match List.find_opt (fun m -> member_class m = class_) t.members with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Topology %s: no pool for class %S" t.name
           (class_name class_))

let use t ~class_ { use } =
  let (Member m) = find t class_ in
  use m.m_pool m.m_handle

let stop_member (Member m) =
  let (module P) = m.m_pool in
  (try Lhws_runtime.Promise.fulfill m.m_stop (Ok ())
   with Invalid_argument _ -> ());
  Domain.join m.m_driver;
  P.shutdown m.m_handle

let create ?(name = "topology") specs =
  if specs = [] then invalid_arg "Topology.create: no pools";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let c = class_name s.spec_class in
      if Hashtbl.mem seen c then
        invalid_arg (Printf.sprintf "Topology.create: duplicate class %S" c);
      Hashtbl.add seen c ())
    specs;
  let members =
    List.map
      (fun s ->
        let (module P : Pool_intf.POOL) = s.spec_pool in
        let handle =
          P.create
            ~name:(name ^ "." ^ class_name s.spec_class)
            ~workers:s.spec_workers ()
        in
        let stop = Lhws_runtime.Promise.create () in
        let driver =
          Domain.spawn (fun () -> P.run handle (fun () -> P.await handle stop))
        in
        Member
          {
            m_class = s.spec_class;
            m_pool = (module P);
            m_handle = handle;
            m_stop = stop;
            m_driver = driver;
          })
      specs
  in
  let t = { name; members; shut = Atomic.make false } in
  (* Wire the scavenge edges now that every member is live.  Partially
     built pools are torn down on a bad edge so a failed [create] leaks
     no domains. *)
  (try
     List.iter
       (fun s ->
         match s.spec_scavenges with
         | None -> ()
         | Some donor_class ->
             if donor_class = s.spec_class then
               invalid_arg
                 (Printf.sprintf
                    "Topology.create: class %S cannot scavenge itself"
                    (class_name s.spec_class));
             let (Member donor) = find t donor_class in
             let (module D) = donor.m_pool in
             let src =
               match D.scavenge_source donor.m_handle with
               | Some src -> src
               | None ->
                   invalid_arg
                     (Printf.sprintf
                        "Topology.create: class %S (%s) has nothing a sibling \
                         can steal"
                        (class_name donor_class) D.name)
             in
             let (Member thief) = find t s.spec_class in
             let (module T) = thief.m_pool in
             if not (T.set_scavenge thief.m_handle ~mode:s.spec_scavenge_mode src)
             then
               invalid_arg
                 (Printf.sprintf
                    "Topology.create: class %S (%s) cannot scavenge"
                    (class_name s.spec_class) T.name))
       specs
   with e ->
     List.iter stop_member members;
     raise e);
  t

let name t = t.name
let classes t = List.map member_class t.members

let submit t ~class_ f =
  let (Member m) = find t class_ in
  let (module P) = m.m_pool in
  P.submit m.m_handle f

let dispatcher t ~class_ =
  let (Member m) = find t class_ in
  let (module P) = m.m_pool in
  fun f -> P.submit m.m_handle f

(* [run] cannot enter the member's own [P.run] — its driver already
   holds it for the topology's lifetime — so the thunk travels the same
   pool-pinned submit path as everything else and the caller blocks on a
   condvar until the member's workers finish it. *)
let run t ~class_ f =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let slot = ref None in
  submit t ~class_ (fun () ->
      let r = try Ok (f ()) with e -> Error e in
      Mutex.lock m;
      slot := Some r;
      Condition.signal cv;
      Mutex.unlock m);
  Mutex.lock m;
  while Option.is_none !slot do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  match Option.get !slot with Ok v -> v | Error e -> raise e

let stats t =
  List.map
    (fun (Member m) ->
      let (module P) = m.m_pool in
      (m.m_class, P.stats m.m_handle))
    t.members

let pool_names t =
  List.map
    (fun (Member m) ->
      let (module P) = m.m_pool in
      (m.m_class, P.name))
    t.members

let shutdown t =
  if Atomic.compare_and_set t.shut false true then List.iter stop_member t.members

let with_topology ?name specs f =
  let t = create ?name specs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
