(** Naive Fibonacci, the paper's unit of per-element computation. *)

val seq : int -> int
(** Sequential recursive fib (exponential work, as in the paper). *)

val par_on : (module Pool_intf.POOL with type t = 'p) -> 'p -> ?cutoff:int -> int -> int
(** Parallel fork–join fib on a pool, sequential below [cutoff]
    (default 12).  Must be called from within the pool's [run]. *)

val dag : ?leaf_work:int -> int -> Lhws_dag.Dag.t
(** The fork–join dag of the same computation (no latency):
    {!Lhws_dag.Generate.fib}. *)
