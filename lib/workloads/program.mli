(** A tiny embedded language for latency-incurring fork–join programs,
    with three interchangeable semantics:

    - {!value}: evaluate the program directly (the reference answer);
    - {!to_dag}: compile its {e structure} to a weighted dag for the
      simulators — one vertex per unit of work, heavy edges for latency —
      so the same program drives {!Lhws_core.Lhws_sim} and the bound
      checkers;
    - {!run_on}: execute it for real on either runtime pool, turning work
      into computation and latency into suspension (or blocking, on the
      baseline pool).

    Programs are series–parallel with value flow but no data-dependent
    {e structure}, which is exactly the paper's determinism assumption:
    "the dag is deterministic, that is, its structure is independent of
    the decisions made by the scheduler". *)

type 'a t

val return : 'a -> 'a t
(** A single unit-work instruction producing a constant. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** One further unit of work transforming the result. *)

val work : int -> 'a t -> 'a t
(** [work k p]: [k >= 1] additional rounds of computation after [p]
    (the result is unchanged). *)

val latency : int -> 'a t -> 'a t
(** [latency delta p]: the result of [p] is delivered through an
    operation incurring [delta >= 2] rounds of latency (a remote read of
    that value, say).  Compiles to a heavy edge; executes as a sleep. *)

val fork2 : 'b t -> 'c t -> ('b -> 'c -> 'a) -> 'a t
(** Run both in parallel; combine at the join (one unit of work). *)

val fork_list : 'b t list -> ('b list -> 'a) -> 'a t
(** Balanced fork tree over a non-empty list. *)

val seq_fork2 : 'x t -> work:int -> f:('x -> 'b) -> 'c t -> ('b -> 'c -> 'a) -> 'a t
(** [seq_fork2 p ~work ~f r g]: run [p]; then fork — the continuation
    applies [f] to [p]'s value at [work >= 1] cost while [r] runs in the
    spawned branch; [g] combines at the join.  Unlike {!fork2}, the
    spawned branch is enabled only {e after} [p] — the sequencing that
    Figure 10's server uses to keep one input outstanding at a time. *)

(** {2 Semantics} *)

val value : 'a t -> 'a
(** Reference evaluation (sequential, latency-free). *)

val work_units : 'a t -> int
(** Total units of work — equals [Metrics.work (to_dag p)]. *)

val to_dag : 'a t -> Lhws_dag.Dag.t
(** The program's weighted dag; always well-formed. *)

val simulate : ?config:Lhws_core.Config.t -> 'a t -> p:int -> Lhws_core.Run.t
(** [Lhws_sim.run (to_dag p)]. *)

val run_on :
  (module Pool_intf.POOL with type t = 'p) ->
  'p ->
  ?work_unit:(unit -> unit) ->
  ?tick:float ->
  'a t ->
  'a
(** Real execution: each unit of work invokes [work_unit] (default: a
    small spin), each unit of latency sleeps [tick] seconds (default
    1 ms).  Call from outside the pool's [run]. *)

(** {2 Pre-built programs} *)

val dist_map_reduce :
  n:int -> latency:int -> leaf_work:int -> f:(int -> int) -> g:(int -> int -> int) -> id:int -> int t
(** Figure 8's distMapReduce over inputs [0 .. n-1]: each is fetched with
    [latency], transformed by [f] at [leaf_work] cost, combined with [g]. *)

val server :
  n:int -> latency:int -> f_work:int -> f:(int -> int) -> g:(int -> int -> int) -> id:int -> int t
(** Figure 10's server, taking [n] inputs (input [k] is the value [k]):
    each input incurs [latency]; [f input] ([f_work] cost) runs in
    parallel with accepting the next input; results combine with [g].
    Structurally [U = 1]. *)
