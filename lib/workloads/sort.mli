(** Distributed merge sort: a latency workload with {e non-uniform} work
    (merge cost grows geometrically up the tree), complementing the
    uniform-leaf map-reduce benchmark.

    Data lives in remote chunks: fetching a chunk incurs latency, sorting
    it costs work proportional to its size, and merges combine results up
    a binary tree.  All chunk fetches can be in flight at once, so the
    suspension width is the number of chunks. *)

val dag : n_chunks:int -> chunk_work:int -> latency:int -> Lhws_dag.Dag.t
(** Simulator form: a binary tree over [n_chunks >= 1] leaves.  Each leaf
    is a fetch (heavy edge of weight [latency]) followed by
    [chunk_work] rounds of sorting; an internal node over [k] leaves costs
    [k * chunk_work / 2] rounds of merging (at least 1). *)

type result = { sorted : int array; elapsed : float }

val run_on :
  (module Pool_intf.POOL with type t = 'p) ->
  'p ->
  n:int ->
  chunk:int ->
  latency:float ->
  seed:int ->
  result
(** Runtime form: sorts [n] pseudo-random keys split into chunks of
    [chunk], fetching each chunk with a sleep of [latency] seconds.
    The result is fully sorted (checked by tests against [Array.sort]). *)

val reference : n:int -> seed:int -> int array
(** The same keys, sorted sequentially. *)
