type web = { link : int list array }

let make_web ~seed ~pages ~max_links =
  if pages < 1 then invalid_arg "Crawler.make_web: pages must be >= 1";
  if max_links < 1 then invalid_arg "Crawler.make_web: max_links must be >= 1";
  let st = Random.State.make [| seed; 0xC4A3 |] in
  let link =
    Array.init pages (fun i ->
        let n = 1 + Random.State.int st max_links in
        List.init n (fun k ->
            (* The first link is always a forward step, so the whole web is
               reachable from page 0; the rest are random (may form joins
               and back-edges, which the crawler must deduplicate). *)
            let span = pages - i - 1 in
            if k = 0 && span > 0 then i + 1 + Random.State.int st (min span (1 + (max_links * 2)))
            else Random.State.int st pages))
  in
  { link }

let links w p = w.link.(p)

let reachable w =
  let n = Array.length w.link in
  let seen = Array.make n false in
  let rec go p acc =
    if seen.(p) then acc
    else begin
      seen.(p) <- true;
      List.fold_left (fun acc q -> go q acc) (acc + 1) w.link.(p)
    end
  in
  go 0 0

type result = { visited : int; checksum : int; elapsed : float }

let crawl_on (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) web ~latency
    ~parse_work =
  let n = Array.length web.link in
  let claimed = Array.init n (fun _ -> Atomic.make false) in
  let claim page = not (Atomic.exchange claimed.(page) true) in
  let t0 = Unix.gettimeofday () in
  let visited, checksum =
    P.run pool (fun () ->
        (* visit returns (pages, checksum) for the subtree of pages it
           claimed; claiming makes the counts disjoint. *)
        let rec visit page =
          if not (claim page) then (0, 0)
          else begin
            P.sleep pool latency (* fetch *);
            let parsed = Fib.seq parse_work + page in
            let rec fold = function
              | [] -> (1, parsed mod Map_reduce.modulus)
              | [ q ] ->
                  let c, s = visit q in
                  (c + 1, (s + parsed) mod Map_reduce.modulus)
              | q :: rest ->
                  let (c1, s1), (c2, s2) =
                    P.fork2 pool (fun () -> fold rest) (fun () -> visit q)
                  in
                  (c1 + c2, (s1 + s2) mod Map_reduce.modulus)
            in
            fold (links web page)
          end
        in
        visit 0)
  in
  { visited; checksum; elapsed = Unix.gettimeofday () -. t0 }
