module Block = Lhws_dag.Block
module Dag = Lhws_dag.Dag

let dag ~n_chunks ~chunk_work ~latency =
  if n_chunks < 1 then invalid_arg "Sort.dag: n_chunks must be >= 1";
  if chunk_work < 1 then invalid_arg "Sort.dag: chunk_work must be >= 1";
  let b = Dag.Builder.create () in
  let rec go k =
    if k = 1 then
      Block.seq b
        (Block.latency ~label:"fetch" b latency)
        (Block.chain ~label:"sort" b chunk_work)
    else
      let half = k / 2 in
      let sub = Block.fork2 b (go (k - half)) (go half) in
      let merge_cost = max 1 (k * chunk_work / 2) in
      Block.seq b sub (Block.chain ~label:"merge" b merge_cost)
  in
  Block.finish b (go n_chunks)

let keys ~n ~seed =
  let st = Random.State.make [| seed; 0x50B7 |] in
  Array.init n (fun _ -> Random.State.int st 1_000_000)

let reference ~n ~seed =
  let a = keys ~n ~seed in
  Array.sort compare a;
  a

let merge left right =
  let nl = Array.length left and nr = Array.length right in
  let out = Array.make (nl + nr) 0 in
  let i = ref 0 and j = ref 0 in
  for k = 0 to nl + nr - 1 do
    if !i < nl && (!j >= nr || left.(!i) <= right.(!j)) then begin
      out.(k) <- left.(!i);
      incr i
    end
    else begin
      out.(k) <- right.(!j);
      incr j
    end
  done;
  out

type result = { sorted : int array; elapsed : float }

let run_on (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) ~n ~chunk ~latency
    ~seed =
  if chunk < 1 then invalid_arg "Sort.run_on: chunk must be >= 1";
  let data = keys ~n ~seed in
  let t0 = Unix.gettimeofday () in
  let sorted =
    P.run pool (fun () ->
        let rec go lo hi =
          if hi - lo <= chunk then begin
            (* fetch the remote chunk, then sort it locally *)
            P.sleep pool latency;
            let a = Array.sub data lo (hi - lo) in
            Array.sort compare a;
            a
          end
          else
            let mid = lo + ((hi - lo) / 2) in
            let left, right = P.fork2 pool (fun () -> go lo mid) (fun () -> go mid hi) in
            merge left right
        in
        if n = 0 then [||] else go 0 n)
  in
  { sorted; elapsed = Unix.gettimeofday () -. t0 }
