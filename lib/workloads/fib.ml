let rec seq n = if n < 2 then n else seq (n - 1) + seq (n - 2)

let par_on (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) ?(cutoff = 12) n =
  let rec go n =
    if n < cutoff then seq n
    else
      let a, b = P.fork2 pool (fun () -> go (n - 1)) (fun () -> go (n - 2)) in
      a + b
  in
  go n

let dag ?leaf_work n = Lhws_dag.Generate.fib ?leaf_work ~n ()
