(* Benchmark harness: regenerates every experiment in DESIGN.md's index.

   Sections F11a-c reproduce the paper's Figure 11 (self-speedup of
   latency-hiding vs. standard work stealing on distributed map-and-reduce
   at three latencies); the T/L/C sections tabulate the quantitative
   claims of Theorems 1-2, Lemmas 1/7, Corollary 1 and the U = 1
   reduction; RT runs the real effects-based pools; AB1/AB2 are the
   policy ablations.  A final bechamel section micro-benchmarks the data
   structures and scheduler kernels backing each table.

   Run with: dune exec bench/main.exe            (all sections)
             dune exec bench/main.exe -- quick   (skip bechamel + RT)
*)

module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
module Suspension = Lhws_dag.Suspension
open Lhws_core
module Bounds = Lhws_analysis.Bounds
module Invariants = Lhws_analysis.Invariants
module W = Lhws_workloads

(* Any bound that fails anywhere in the harness increments this; the DONE
   footer turns it into a visible verdict so the bench doubles as a
   regression check. *)
let bound_failures = ref 0

let expect ok = if not ok then incr bound_failures

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

(* ----------------------------------------------------------------- *)
(* Figure 11: speedup curves.  The paper: n = 5000 remote inputs, each
   mapped with fib(30), latency delta in {500ms, 50ms, 1ms}, P = 1..30,
   speedup relative to the 1-processor WS run.  In simulator units one
   round is ~1ms of computation, so a fib(30) leaf is ~50 rounds of work
   and the three latencies are 500, 50 and 2 rounds; n = 5000 as in the
   paper. *)

let figure11 () =
  let n = 5000 and leaf_work = 50 in
  let ps = [ 1; 2; 4; 8; 12; 16; 20; 24; 30 ] in
  List.iter
    (fun (panel, delta, paper_note) ->
      section
        (Printf.sprintf
           "F11%s | Figure 11 (%s): map-reduce n=%d, leaf work=%d rounds, latency=%d rounds"
           panel paper_note n leaf_work delta);
      let dag = Generate.map_reduce ~n ~leaf_work ~latency:delta in
      Printf.printf "W=%d S=%d U=%d; speedups relative to WS at P=1\n" (Metrics.work dag)
        (Metrics.span dag) n;
      let series = Sweep.speedups ~dag ~ps () in
      Format.printf "%a@." Sweep.pp_series series;
      (* machine-readable artifact for plotting *)
      (try
         if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
         let path = Printf.sprintf "results/figure11%s.csv" panel in
         Lhws_analysis.Report.write_file path (Lhws_analysis.Report.csv_of_series series);
         Printf.printf "(csv: %s)\n" path
       with Sys_error _ -> ());
      match series with
      | [ lhws; ws ] ->
          let at p pts = List.find (fun (q : Sweep.point) -> q.Sweep.p = p) pts in
          let l30 = at 30 lhws.Sweep.points and w30 = at 30 ws.Sweep.points in
          Printf.printf "at P=30: LHWS speedup %.1f vs WS %.1f (ratio %.2fx)\n%!"
            l30.Sweep.speedup w30.Sweep.speedup
            (l30.Sweep.speedup /. w30.Sweep.speedup)
      | _ -> ())
    [ ("a", 500, "delta = 500ms"); ("b", 50, "delta = 50ms"); ("c", 2, "delta = 1ms") ]

(* ----------------------------------------------------------------- *)

let theorem1 () =
  section "T1 | Theorem 1: greedy schedule length <= W/P + S";
  Printf.printf "%-32s %4s %8s %8s %8s %6s\n" "workload" "P" "rounds" "bound" "ratio" "ok";
  List.iter
    (fun (name, dag) ->
      List.iter
        (fun p ->
          let r = Greedy.run dag ~p in
          let b = Greedy.bound dag ~p in
          expect (r.Run.rounds <= b);
          Printf.printf "%-32s %4d %8d %8d %8.3f %6b\n" name p r.Run.rounds b
            (float_of_int r.Run.rounds /. float_of_int b)
            (r.Run.rounds <= b))
        [ 1; 4; 16 ])
    [
      ("map_reduce(500,20,100)", Generate.map_reduce ~n:500 ~leaf_work:20 ~latency:100);
      ("server(100,25,60)", Generate.server ~n:100 ~f_work:25 ~latency:60);
      ("fib(18)", Generate.fib ~n:18 ());
      ("pipeline(6,64,40)", Generate.pipeline ~stages:6 ~items:64 ~latency:40);
      ( "random(seed=5)",
        Generate.random_fork_join ~seed:5 ~size_hint:4000 ~latency_prob:0.2 ~max_latency:80 );
      ( "jitter_mapreduce(300)",
        Generate.map_reduce_jitter ~seed:7 ~n:300 ~leaf_work:10 ~min_latency:20
          ~max_latency:200 );
      ("sort(64 chunks)", Lhws_workloads.Sort.dag ~n_chunks:64 ~chunk_work:8 ~latency:50);
    ];
  Printf.printf "%!"

(* ----------------------------------------------------------------- *)

let theorem2 () =
  section "T2 | Theorem 2: LHWS rounds vs W/P + S*U*(1+lg U)  (U swept via n)";
  Printf.printf "%8s %4s %5s %10s %12s %8s | %6s %6s | %10s %12s\n" "n=U" "P" "delta" "rounds"
    "bound" "ratio" "maxdq" "<=U+1" "steals" "steal-ratio";
  List.iter
    (fun (n, delta) ->
      List.iter
        (fun p ->
          let dag = Generate.map_reduce ~n ~leaf_work:10 ~latency:delta in
          let run = Lhws_sim.run dag ~p in
          let i = Bounds.instance ~suspension_width:n dag ~p run in
          let steal_bound =
            float_of_int p *. float_of_int i.Bounds.span *. float_of_int (max 1 n)
            *. (1. +. Bounds.lg n)
          in
          expect (Bounds.lemma7_ok i);
          expect (Bounds.width_ok i);
          Printf.printf "%8d %4d %5d %10d %12.0f %8.3f | %6d %6b | %10d %12.3f\n" n p delta
            run.Run.rounds (Bounds.lhws_bound i) (Bounds.lhws_ratio i)
            run.Run.stats.Stats.max_deques_per_worker (Bounds.lemma7_ok i)
            run.Run.stats.Stats.steal_attempts
            (float_of_int run.Run.stats.Stats.steal_attempts /. steal_bound))
        [ 1; 4; 16 ])
    [ (1, 50); (8, 50); (64, 50); (512, 50); (512, 500) ];
  Printf.printf
    "(steal-ratio: measured steal attempts / (P*S*U*(1+lgU)) — bounded per Theorem 2)\n%!"

(* ----------------------------------------------------------------- *)

let lemma1 () =
  section "L1 | Lemma 1: rounds <= (4W + R)/P and token balance";
  Printf.printf "%-28s %4s %8s %12s %6s %6s\n" "workload" "P" "rounds" "(4W+R)/P" "ok" "bal";
  List.iter
    (fun (name, dag) ->
      List.iter
        (fun p ->
          let run = Lhws_sim.run dag ~p in
          let w = Metrics.work dag in
          let r = run.Run.stats.Stats.steal_attempts in
          let bound = ((4 * w) + r) / p in
          expect (run.Run.rounds <= bound + 1);
          expect (Stats.balanced run.Run.stats);
          Printf.printf "%-28s %4d %8d %12d %6b %6b\n" name p run.Run.rounds bound
            (run.Run.rounds <= bound + 1)
            (Stats.balanced run.Run.stats))
        [ 1; 4; 16 ])
    [
      ("map_reduce(300,10,80)", Generate.map_reduce ~n:300 ~leaf_work:10 ~latency:80);
      ("server(80,15,40)", Generate.server ~n:80 ~f_work:15 ~latency:40);
      ("fib(17)", Generate.fib ~n:17 ());
    ];
  Printf.printf "%!"

(* ----------------------------------------------------------------- *)

let corollary1 () =
  section "C1 | Corollary 1: S* <= 2S(1+lg U), and Lemma 2: d(v) <= (2+lgU) d_G(v)";
  Printf.printf "%-28s %4s %6s %6s %8s %10s %6s %6s\n" "workload" "P" "S" "S*" "S*/S"
    "max d/dG" "bnd" "viol";
  List.iter
    (fun (name, dag, u) ->
      List.iter
        (fun p ->
          let run = Lhws_sim.run ~config:Config.analysis dag ~p in
          let tr = Run.trace_exn run in
          let dr = Invariants.depth_report ~suspension_width:u dag tr in
          expect (dr.Invariants.violations = 0);
          Printf.printf "%-28s %4d %6d %6d %8.3f %10.3f %6.2f %6d\n" name p dr.Invariants.span
            dr.Invariants.enabling_span
            (float_of_int dr.Invariants.enabling_span
            /. float_of_int (max 1 dr.Invariants.span))
            dr.Invariants.max_ratio dr.Invariants.bound dr.Invariants.violations)
        [ 1; 4; 16 ])
    [
      ("map_reduce(200,8,60)", Generate.map_reduce ~n:200 ~leaf_work:8 ~latency:60, 200);
      ("server(60,10,30)", Generate.server ~n:60 ~f_work:10 ~latency:30, 1);
      ("pipeline(5,40,25)", Generate.pipeline ~stages:5 ~items:40 ~latency:25, 40);
      ("fib(15)", Generate.fib ~n:15 (), 0);
    ];
  Printf.printf "%!"

(* ----------------------------------------------------------------- *)

let lemma8 () =
  section "L8 | Lemma 8: phases of P(U+1) steal attempts drop the potential (w.p. > 1/4)";
  Printf.printf "%-24s %4s %4s | %8s %10s %10s\n" "workload" "P" "U" "phases" "successful"
    "fraction";
  List.iter
    (fun (name, dag, u) ->
      List.iter
        (fun p ->
          let snaps = ref [] in
          let run =
            Lhws_sim.run
              ~config:{ Config.analysis with fast_forward = false }
              ~observer:(fun s -> snaps := s :: !snaps)
              dag ~p
          in
          let s_star = Trace.enabling_span (Run.trace_exn run) in
          let r = Lhws_analysis.Potential.phase_report ~s_star ~p ~u (List.rev !snaps) in
          Printf.printf "%-24s %4d %4d | %8d %10d %10.2f\n" name p u
            r.Lhws_analysis.Potential.phases r.Lhws_analysis.Potential.successful
            r.Lhws_analysis.Potential.fraction)
        [ 2; 4 ])
    [
      ("map_reduce(16,3,25)", Generate.map_reduce ~n:16 ~leaf_work:3 ~latency:25, 16);
      ("server(12,4,10)", Generate.server ~n:12 ~f_work:4 ~latency:10, 1);
      ("fib(11)", Generate.fib ~n:11 (), 1);
    ];
  Printf.printf "(the lemma guarantees fraction > 0.25 in expectation)\n%!"

(* ----------------------------------------------------------------- *)

let server_u1 () =
  section "U1 | Server (Figure 10): U=1 keeps one deque per worker; WS-like bound";
  Printf.printf "%4s %10s %10s %10s %8s %10s\n" "P" "LHWS" "WS" "greedy" "maxdq" "W/P+S";
  let dag = Generate.server ~n:200 ~f_work:30 ~latency:80 in
  List.iter
    (fun p ->
      let lh = Lhws_sim.run dag ~p in
      let ws = Ws_sim.run dag ~p in
      let gr = Greedy.run dag ~p in
      Printf.printf "%4d %10d %10d %10d %8d %10d\n" p lh.Run.rounds ws.Run.rounds gr.Run.rounds
        lh.Run.stats.Stats.max_deques_per_worker (Greedy.bound dag ~p))
    [ 1; 2; 4; 8; 16 ];
  Printf.printf "%!"

(* ----------------------------------------------------------------- *)

let ablation_steal () =
  section "AB1 | Steal policy: random global deque (analyzed) vs random worker (Section 6)";
  Printf.printf "%-16s %4s | %10s %10s %8s | %10s %10s %8s\n" "workload" "P" "deq:rounds"
    "attempts" "hit%" "wrk:rounds" "attempts" "hit%";
  List.iter
    (fun (name, dag) ->
      List.iter
        (fun p ->
          let run_with policy =
            Lhws_sim.run ~config:{ Config.default with steal_policy = policy } dag ~p
          in
          let a = run_with Config.Steal_global_deque in
          let b = run_with Config.Steal_worker_then_deque in
          let hit (r : Run.t) =
            100.
            *. float_of_int r.Run.stats.Stats.steals_ok
            /. float_of_int (max 1 r.Run.stats.Stats.steal_attempts)
          in
          Printf.printf "%-16s %4d | %10d %10d %8.1f | %10d %10d %8.1f\n" name p a.Run.rounds
            a.Run.stats.Stats.steal_attempts (hit a) b.Run.rounds
            b.Run.stats.Stats.steal_attempts (hit b))
        [ 4; 16 ])
    [
      ("map_reduce", Generate.map_reduce ~n:400 ~leaf_work:10 ~latency:100);
      ("server", Generate.server ~n:120 ~f_work:20 ~latency:50);
    ];
  Printf.printf "%!"

(* ----------------------------------------------------------------- *)

let ablation_resume () =
  section "AB2 | Resume injection: balanced pfor tree (paper) vs linear chain";
  Printf.printf
    "(resume_burst: all n suspended tasks resume in the same round on one deque)\n";
  Printf.printf "%6s %4s | %12s %12s %12s\n" "n" "P" "pfor rounds" "linear" "linear/pfor";
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          let dag = Generate.resume_burst ~n ~leaf_work:3 ~latency:50 in
          let run_with policy =
            (Lhws_sim.run ~config:{ Config.default with resume_policy = policy } dag ~p)
              .Run.rounds
          in
          let tree = run_with Config.Resume_pfor_tree in
          let lin = run_with Config.Resume_linear in
          Printf.printf "%6d %4d | %12d %12d %12.2f\n" n p tree lin
            (float_of_int lin /. float_of_int tree))
        [ 4; 16 ])
    [ 64; 256; 1024 ];
  Printf.printf "%!"

(* ----------------------------------------------------------------- *)

let ablation_resume_target () =
  section
    "AB3 | Resume target: original deque (paper) vs fresh deque per resume (Section 7's \
     Spoonhower variant)";
  Printf.printf "%-24s %4s | %10s %6s %6s | %10s %6s %6s\n" "workload" "P" "orig:rnds" "maxdq"
    "alloc" "fresh:rnds" "maxdq" "alloc";
  List.iter
    (fun (name, dag) ->
      List.iter
        (fun p ->
          let run_with target =
            Lhws_sim.run ~config:{ Config.default with resume_target = target } dag ~p
          in
          let a = run_with Config.Original_deque in
          let b = run_with Config.Fresh_deque in
          Printf.printf "%-24s %4d | %10d %6d %6d | %10d %6d %6d\n" name p a.Run.rounds
            a.Run.stats.Stats.max_deques_per_worker a.Run.stats.Stats.deques_allocated
            b.Run.rounds b.Run.stats.Stats.max_deques_per_worker
            b.Run.stats.Stats.deques_allocated)
        [ 4; 16 ])
    [
      ("map_reduce(400,10,100)", Generate.map_reduce ~n:400 ~leaf_work:10 ~latency:100);
      ("server(120,20,50)", Generate.server ~n:120 ~f_work:20 ~latency:50);
      ("burst(256,3,50)", Generate.resume_burst ~n:256 ~leaf_work:3 ~latency:50);
    ];
  Printf.printf
    "(the paper's policy recycles deques and respects Lemma 7; the fresh-deque variant's \
     allocation scales with resumes)\n%!"

(* ----------------------------------------------------------------- *)

let scale () =
  section
    "SCALE | Large numbers of suspended threads (Section 6.1's closing claim) + Theorem 3 \
     (amortized O(1) per round)";
  Printf.printf "%8s %10s %12s %10s %12s %14s\n" "n=U" "rounds" "max susp" "batches"
    "wall (ms)" "ns/worker-rnd";
  List.iter
    (fun n ->
      (* Everything suspends almost immediately and stays suspended for a
         long time; the scheduler must then digest n resumed vertices. *)
      let dag = Generate.map_reduce ~n ~leaf_work:1 ~latency:1_000_000 in
      let t0 = Unix.gettimeofday () in
      let run = Lhws_sim.run dag ~p:16 in
      let dt = Unix.gettimeofday () -. t0 in
      let stepped = run.Run.rounds - run.Run.stats.Stats.fast_forwarded_rounds in
      Printf.printf "%8d %10d %12d %10d %12.1f %14.0f\n" n run.Run.rounds
        run.Run.stats.Stats.max_live_suspended run.Run.stats.Stats.pfor_batches (dt *. 1000.)
        (dt *. 1e9 /. float_of_int (max 1 (stepped * 16))))
    [ 1_000; 10_000; 50_000 ];
  Printf.printf
    "(max susp = n: all reads in flight at once; per-round cost stays flat as U grows — \
     Theorem 3's amortized O(1))\n%!"

(* ----------------------------------------------------------------- *)

let multiprogrammed () =
  section "MP | Multiprogrammed environment (ABP setting): availability sweep, LHWS P=8";
  Printf.printf "%12s %10s %14s %18s\n" "availability" "rounds" "unavailable" "rounds*avail";
  let dag = Generate.map_reduce ~n:300 ~leaf_work:10 ~latency:80 in
  List.iter
    (fun (label, k) ->
      let availability =
        if k = 4 then None
        else Some (fun round worker -> ((round * 31) + (worker * 17)) mod 4 < k)
      in
      let config = { Config.default with availability } in
      let run = Lhws_sim.run ~config dag ~p:8 in
      Printf.printf "%12s %10d %14d %18.0f\n" label run.Run.rounds
        run.Run.stats.Stats.unavailable_rounds
        (float_of_int run.Run.rounds *. (float_of_int k /. 4.)))
    [ ("100%", 4); ("75%", 3); ("50%", 2); ("25%", 1) ];
  Printf.printf
    "(effective work rate scales with availability: rounds*avail stays near the dedicated \
     rounds)\n%!"

(* ----------------------------------------------------------------- *)

let runtime () =
  section "RT | Real pools: latency-hiding vs blocking (wall-clock, 2 worker domains)";
  let module P = W.Pool_intf in
  let run_mr (pool : P.pool) ~delta =
    let module Pool = (val pool : P.POOL) in
    let p = Pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> W.Map_reduce.run_on (module Pool) p ~n:60 ~latency:delta ~fib_n:18)
  in
  Printf.printf "map-reduce n=60, fib(18) per item:\n";
  Printf.printf "%10s %12s %12s %8s\n" "delta" "LHWS (s)" "WS (s)" "WS/LHWS";
  List.iter
    (fun delta ->
      let lh = run_mr P.lhws ~delta in
      let ws = run_mr P.ws ~delta in
      assert (lh.W.Map_reduce.value = ws.W.Map_reduce.value);
      Printf.printf "%8.1fms %12.3f %12.3f %8.2f\n" (delta *. 1000.) lh.W.Map_reduce.elapsed
        ws.W.Map_reduce.elapsed
        (ws.W.Map_reduce.elapsed /. lh.W.Map_reduce.elapsed))
    [ 0.05; 0.005; 0.0005 ];
  let web = W.Crawler.make_web ~seed:42 ~pages:120 ~max_links:4 in
  let crawl (pool : P.pool) =
    let module Pool = (val pool : P.POOL) in
    let p = Pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> W.Crawler.crawl_on (module Pool) p web ~latency:0.01 ~parse_work:14)
  in
  let lh = crawl P.lhws and ws = crawl P.ws in
  Printf.printf "crawler (120 pages, 10ms fetch): LHWS %.3fs vs WS %.3fs (%.1fx)\n%!"
    lh.W.Crawler.elapsed ws.W.Crawler.elapsed
    (ws.W.Crawler.elapsed /. lh.W.Crawler.elapsed)

(* ----------------------------------------------------------------- *)

let ablation_threads () =
  section
    "AB4 | Fibers vs OS threads (Section 7): latency hidden either way, overhead differs";
  let module P = W.Pool_intf in
  let fiber_mr ~n ~delta ~fib_n =
    let module Pool = (val P.lhws : P.POOL) in
    let p = Pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> (W.Map_reduce.run_on (module Pool) p ~n ~latency:delta ~fib_n).W.Map_reduce.elapsed)
  in
  let thread_mr ~n ~delta ~fib_n =
    Lhws_runtime.Threaded_pool.with_pool ~max_threads:1024 (fun p ->
        let t0 = Unix.gettimeofday () in
        let v =
          Lhws_runtime.Threaded_pool.parallel_map_reduce p ~grain:1 ~lo:0 ~hi:n
            ~map:(fun _ ->
              Lhws_runtime.Threaded_pool.sleep p delta;
              W.Fib.seq fib_n mod W.Map_reduce.modulus)
            ~combine:(fun a b -> (a + b) mod W.Map_reduce.modulus)
            ~id:0
        in
        ignore v;
        let dt = Unix.gettimeofday () -. t0 in
        (dt, Lhws_runtime.Threaded_pool.threads_spawned p))
  in
  Printf.printf "map-reduce, fib(12) per item (thread-per-item vs fiber-per-item):\n";
  Printf.printf "%6s %8s | %12s | %12s %10s\n" "n" "delta" "fibers (s)" "threads (s)" "spawned";
  List.iter
    (fun (n, delta) ->
      let tf = fiber_mr ~n ~delta ~fib_n:12 in
      let tt, spawned = thread_mr ~n ~delta ~fib_n:12 in
      Printf.printf "%6d %6.0fms | %12.4f | %12.4f %10d\n" n (delta *. 1000.) tf tt spawned)
    [ (200, 0.); (200, 0.002); (1000, 0.) ];
  Printf.printf
    "(both hide latency; the thread pool pays creation + kernel scheduling per task)\n%!"

(* ----------------------------------------------------------------- *)

let prediction () =
  section
    "PRED | Cross-layer validation: simulator rounds predict runtime wall-clock (P = 1, one \
     core)";
  (* One work unit = a spin of ~10us; one latency unit = the same 10us via
     the timer.  The simulator charges one round per unit of either, so at
     P = 1 its round count times the unit duration should predict the real
     pool's elapsed time. *)
  let module P = W.Pool_intf in
  let spin () =
    let acc = ref 0 in
    for i = 1 to 20_000 do
      acc := (!acc * 31) + i
    done;
    Sys.opaque_identity !acc |> ignore
  in
  let t0 = Unix.gettimeofday () in
  let calib_n = 2_000 in
  for _ = 1 to calib_n do
    spin ()
  done;
  let unit_s = (Unix.gettimeofday () -. t0) /. float_of_int calib_n in
  Printf.printf "calibrated work unit: %.1f us\n" (unit_s *. 1e6);
  Printf.printf "%-28s %10s %12s %12s %8s\n" "program" "sim rounds" "predicted(s)"
    "measured(s)" "ratio";
  List.iter
    (fun (name, prog) ->
      let rounds = (W.Program.simulate prog ~p:1).Run.rounds in
      let predicted = float_of_int rounds *. unit_s in
      let module Pool = (val P.lhws : P.POOL) in
      let pool = Pool.create ~workers:1 () in
      let measured =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            ignore (W.Program.run_on (module Pool) pool ~work_unit:spin ~tick:unit_s prog);
            Unix.gettimeofday () -. t0)
      in
      Printf.printf "%-28s %10d %12.3f %12.3f %8.2f\n" name rounds predicted measured
        (measured /. predicted))
    [
      ( "map_reduce(40,100,5)",
        W.Program.dist_map_reduce ~n:40 ~latency:100 ~leaf_work:5 ~f:Fun.id ~g:( + ) ~id:0 );
      ( "server(20,50,10)",
        W.Program.server ~n:20 ~latency:50 ~f_work:10 ~f:Fun.id ~g:( + ) ~id:0 );
      ( "map_reduce(100,20,10)",
        W.Program.dist_map_reduce ~n:100 ~latency:20 ~leaf_work:10 ~f:Fun.id ~g:( + ) ~id:0 );
    ];
  Printf.printf
    "(ratio ~ 1: the discrete model is a faithful predictor of the real scheduler)\n%!"

let bechamel_section () =
  section "MICRO | bechamel micro-benchmarks (ns per run, OLS on monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let mr_dag = Generate.map_reduce ~n:64 ~leaf_work:5 ~latency:50 in
  let fib_dag = Generate.fib ~n:13 () in
  let tests =
    [
      Test.make ~name:"deque push+pop x1000"
        (Staged.stage (fun () ->
             let d = Lhws_deque.Deque.create () in
             for i = 1 to 1000 do
               Lhws_deque.Deque.push_bottom d i
             done;
             for _ = 1 to 1000 do
               ignore (Lhws_deque.Deque.pop_bottom d)
             done));
      Test.make ~name:"chase-lev push+pop x1000"
        (Staged.stage (fun () ->
             let d = Lhws_deque.Chase_lev.create () in
             for i = 1 to 1000 do
               Lhws_deque.Chase_lev.push_bottom d i
             done;
             for _ = 1 to 1000 do
               ignore (Lhws_deque.Chase_lev.pop_bottom d)
             done));
      Test.make ~name:"lhws_sim fib(13) P=4"
        (Staged.stage (fun () -> ignore (Lhws_sim.run fib_dag ~p:4)));
      Test.make ~name:"lhws_sim map-reduce(64) P=4"
        (Staged.stage (fun () -> ignore (Lhws_sim.run mr_dag ~p:4)));
      Test.make ~name:"ws_sim map-reduce(64) P=4"
        (Staged.stage (fun () -> ignore (Ws_sim.run mr_dag ~p:4)));
      Test.make ~name:"greedy map-reduce(64) P=4"
        (Staged.stage (fun () -> ignore (Greedy.run mr_dag ~p:4)));
      Test.make ~name:"metrics span + U lower bound"
        (Staged.stage (fun () ->
             ignore (Metrics.span mr_dag);
             ignore (Suspension.lower_bound_greedy mr_dag)));
    ]
  in
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-40s %14.0f ns/run\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    tests;
  Printf.printf "%!"

let () =
  let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" in
  figure11 ();
  theorem1 ();
  theorem2 ();
  lemma1 ();
  corollary1 ();
  lemma8 ();
  server_u1 ();
  ablation_steal ();
  ablation_resume ();
  ablation_resume_target ();
  multiprogrammed ();
  scale ();
  if not quick then begin
    runtime ();
    ablation_threads ();
    prediction ();
    bechamel_section ()
  end;
  section
    (if !bound_failures = 0 then "DONE - all bounds verified"
     else Printf.sprintf "DONE - %d BOUND VIOLATIONS (see tables above)" !bound_failures)
