(* Benchmark driver: regenerates every experiment in DESIGN.md's index.

   The scenarios live in the lhws_bench library (scenarios_*.ml), each
   registered into Registry and scaled by the chosen profile; this
   executable just picks the profile, runs them in order, and writes the
   machine-readable sample log.

   Run with: dune exec bench/main.exe            (all sections, full sizes)
             dune exec bench/main.exe -- quick   (skip bechamel + real-pool sections)
             dune exec bench/main.exe -- smoke   (everything tiny; CI)
             dune exec bench/main.exe -- full --only http   (one section)
*)

module B = Lhws_bench

let () =
  (* Server-child mode: the HTTP scenarios re-exec this binary to host
     the server in its own process (its own descriptor budget, nothing
     shared with the load generator).  Dispatch before anything else. *)
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "--http-child" then begin
    B.Scenarios_http.child_main (Array.sub Sys.argv 2 (Array.length Sys.argv - 2));
    exit 0
  end;
  let usage () =
    Printf.eprintf "usage: %s [full|quick|smoke] [--only SUBSTRING]\n" Sys.argv.(0);
    exit 2
  in
  let profile, only =
    let rec parse i profile only =
      if i >= Array.length Sys.argv then (profile, only)
      else
        match Sys.argv.(i) with
        | "--only" when i + 1 < Array.length Sys.argv ->
            parse (i + 2) profile (Some Sys.argv.(i + 1))
        | arg -> (
            match B.Registry.profile_of_string arg with
            | Some p -> parse (i + 1) p only
            | None -> usage ())
    in
    parse 1 B.Registry.Full None
  in
  B.Scenarios_speedup.register ();
  B.Scenarios_bounds.register ();
  B.Scenarios_ablation.register ();
  B.Scenarios_runtime.register ();
  B.Scenarios_micro.register ();
  B.Scenarios_contention.register ();
  B.Scenarios_net.register ();
  B.Scenarios_micropools.register ();
  B.Scenarios_http.register ();
  B.Registry.run_all ?only profile;
  (try
     if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
     B.Bench_json.write ~path:"results/BENCH_results.json";
     Printf.printf "\n(json: results/BENCH_results.json, %d samples, profile %s)\n"
       (B.Bench_json.count ())
       (B.Registry.profile_name profile)
   with Sys_error e -> Printf.eprintf "could not write BENCH_results.json: %s\n" e);
  B.Registry.section
    (if !B.Registry.bound_failures = 0 then "DONE - all bounds verified"
     else
       Printf.sprintf "DONE - %d BOUND VIOLATIONS (see tables above)"
         !B.Registry.bound_failures);
  if !B.Registry.bound_failures > 0 then exit 1
