(* Figure 11: speedup curves.  The paper: n = 5000 remote inputs, each
   mapped with fib(30), latency delta in {500ms, 50ms, 1ms}, P = 1..30,
   speedup relative to the 1-processor WS run.  In simulator units one
   round is ~1ms of computation, so a fib(30) leaf is ~50 rounds of work
   and the three latencies are 500, 50 and 2 rounds; n = 5000 as in the
   paper. *)

module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
open Lhws_core
module R = Registry

let figure11 profile =
  let n = R.pick profile ~full:5000 ~smoke:40 in
  let leaf_work = R.pick profile ~full:50 ~smoke:5 in
  let ps = R.pick profile ~full:[ 1; 2; 4; 8; 12; 16; 20; 24; 30 ] ~smoke:[ 1; 2 ] in
  let p_max = List.fold_left max 1 ps in
  List.iter
    (fun (panel, delta, paper_note) ->
      R.section
        (Printf.sprintf
           "F11%s | Figure 11 (%s): map-reduce n=%d, leaf work=%d rounds, latency=%d rounds"
           panel paper_note n leaf_work delta);
      let dag = Generate.map_reduce ~n ~leaf_work ~latency:delta in
      Printf.printf "W=%d S=%d U=%d; speedups relative to WS at P=1\n" (Metrics.work dag)
        (Metrics.span dag) n;
      let series = Sweep.speedups ~dag ~ps () in
      Format.printf "%a@." Sweep.pp_series series;
      List.iter
        (fun (s : Sweep.series) ->
          List.iter
            (fun (pt : Sweep.point) ->
              Bench_json.record
                ~scenario:(Printf.sprintf "figure11%s" panel)
                ~pool:(String.lowercase_ascii (Sweep.algo_name s.Sweep.algo) ^ "-sim")
                ~workers:pt.Sweep.p ~rounds:pt.Sweep.rounds ~speedup:pt.Sweep.speedup ())
            s.Sweep.points)
        series;
      (* machine-readable artifact for plotting *)
      (try
         if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
         let path = Printf.sprintf "results/figure11%s.csv" panel in
         Lhws_analysis.Report.write_file path (Lhws_analysis.Report.csv_of_series series);
         Printf.printf "(csv: %s)\n" path
       with Sys_error _ -> ());
      match series with
      | [ lhws; ws ] ->
          let at p pts = List.find (fun (q : Sweep.point) -> q.Sweep.p = p) pts in
          let l = at p_max lhws.Sweep.points and w = at p_max ws.Sweep.points in
          Printf.printf "at P=%d: LHWS speedup %.1f vs WS %.1f (ratio %.2fx)\n%!" p_max
            l.Sweep.speedup w.Sweep.speedup
            (l.Sweep.speedup /. w.Sweep.speedup)
      | _ -> ())
    [ ("a", 500, "delta = 500ms"); ("b", 50, "delta = 50ms"); ("c", 2, "delta = 1ms") ]

let register () = R.register ~name:"figure11" figure11
