(* Scenario registry for the benchmark harness: sections register
   themselves once, the driver picks a profile and runs them in
   registration order. *)

type profile = Full | Quick | Smoke

let profile_name = function Full -> "full" | Quick -> "quick" | Smoke -> "smoke"

let profile_of_string = function
  | "full" -> Some Full
  | "quick" -> Some Quick
  | "smoke" -> Some Smoke
  | _ -> None

(* Smoke shrinks every scenario to seconds; the other profiles run the
   real sizes. *)
let pick profile ~full ~smoke = match profile with Smoke -> smoke | Full | Quick -> full

type scenario = {
  name : string;
  skip_in_quick : bool;  (* the historical [quick] arg skips the slow sections *)
  skip_in_smoke : bool;  (* micro-benchmarks are meaningless at smoke sizes *)
  run : profile -> unit;
}

let scenarios : scenario list ref = ref []

let register ?(skip_in_quick = false) ?(skip_in_smoke = false) ~name run =
  scenarios := { name; skip_in_quick; skip_in_smoke; run } :: !scenarios

(* Any bound that fails anywhere in the harness increments this; the DONE
   footer turns it into a visible verdict so the bench doubles as a
   regression check. *)
let bound_failures = ref 0

let expect ok = if not ok then incr bound_failures

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let run_all profile =
  List.iter
    (fun s ->
      let skip =
        match profile with
        | Full -> false
        | Quick -> s.skip_in_quick
        | Smoke -> s.skip_in_smoke
      in
      if not skip then s.run profile)
    (List.rev !scenarios)
