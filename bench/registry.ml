(* Scenario registry for the benchmark harness: sections register
   themselves once, the driver picks a profile and runs them in
   registration order. *)

type profile = Full | Quick | Smoke

let profile_name = function Full -> "full" | Quick -> "quick" | Smoke -> "smoke"

let profile_of_string = function
  | "full" -> Some Full
  | "quick" -> Some Quick
  | "smoke" -> Some Smoke
  | _ -> None

(* Smoke shrinks every scenario to seconds; the other profiles run the
   real sizes. *)
let pick profile ~full ~smoke = match profile with Smoke -> smoke | Full | Quick -> full

type scenario = {
  name : string;
  skip_in_quick : bool;  (* the historical [quick] arg skips the slow sections *)
  skip_in_smoke : bool;  (* micro-benchmarks are meaningless at smoke sizes *)
  run : profile -> unit;
}

let scenarios : scenario list ref = ref []

let register ?(skip_in_quick = false) ?(skip_in_smoke = false) ~name run =
  scenarios := { name; skip_in_quick; skip_in_smoke; run } :: !scenarios

(* Any bound that fails anywhere in the harness increments this; the DONE
   footer turns it into a visible verdict so the bench doubles as a
   regression check. *)
let bound_failures = ref 0

let expect ok = if not ok then incr bound_failures

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

(* [only] narrows the run to scenarios whose registered name contains
   the given substring — the way to re-run one expensive section (say,
   the 10k-connection HTTP leg at full profile) without paying for the
   whole suite. *)
let name_matches sub name =
  let nl = String.length name and sl = String.length sub in
  let rec go i = i + sl <= nl && (String.sub name i sl = sub || go (i + 1)) in
  sl = 0 || go 0

let run_all ?only profile =
  List.iter
    (fun s ->
      let skip =
        match profile with
        | Full -> false
        | Quick -> s.skip_in_quick
        | Smoke -> s.skip_in_smoke
      in
      let selected =
        match only with None -> true | Some sub -> name_matches sub s.name
      in
      if selected && not skip then s.run profile)
    (List.rev !scenarios)
