(* Contention microbenchmarks for the scheduler's hot paths: the resume
   channel (yield storm), the steal candidate scan (a fork tree of tiny
   tasks under both steal policies), the shared timer (sleep storm) and
   the suspend/resume round-trip (ping-pong, run across every pool).
   Each runs at several worker counts so oversubscription and cross-domain
   traffic show up; the JSON samples are what the CI regression guard
   compares against the committed baseline. *)

module R = Registry
module P = Lhws_workloads.Pool_intf
module Lhws = Lhws_runtime.Lhws_pool
module Ws = Lhws_runtime.Ws_pool
module Core = Lhws_runtime.Scheduler_core
module Fiber = Lhws_runtime.Fiber
module Channel = Lhws_runtime.Channel

let stat_counters (stats : Lhws_runtime.Scheduler_core.stats) =
  [
    ("steals", stats.steals);
    ("failed_steals", stats.failed_steals);
    ("steals_batched", stats.steals_batched);
    ("tasks_stolen", stats.tasks_stolen);
    ("deques_allocated", stats.deques_allocated);
    ("suspensions", stats.suspensions);
    ("resumes", stats.resumes);
    ("io_pending", stats.io_pending);
    ("io_syscalls", stats.io_syscalls);
  ]

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let kops ops wall = float_of_int ops /. wall /. 1e3

(* Every fiber yields in a tight loop: each yield is one suspend + one
   same-or-cross-domain resume through the deque's resume channel and the
   owner's notification channel — the exact path on_resume/drain_resumed
   implement. *)
let resume_storm profile =
  R.section "CONT1 | resume-storm: suspend/resume channel throughput (yield loops)";
  (* Smoke stays CI-sized but large enough (tens of ms) that the regression
     guard's 25% threshold measures the scheduler, not timer noise. *)
  let fibers = R.pick profile ~full:256 ~smoke:128 in
  let yields = R.pick profile ~full:1000 ~smoke:500 in
  let ops = fibers * yields in
  Printf.printf "%d fibers x %d yields = %d suspend/resume pairs\n" fibers yields ops;
  Printf.printf "%8s %12s %14s\n" "workers" "wall (s)" "kops/s";
  List.iter
    (fun workers ->
      Lhws.with_pool ~workers (fun p ->
          let (), wall =
            time (fun () ->
                Lhws.run p (fun () ->
                    Lhws.parallel_for p ~lo:0 ~hi:fibers (fun _ ->
                        for _ = 1 to yields do
                          Fiber.yield ()
                        done)))
          in
          Bench_json.record ~scenario:"contention_resume_storm" ~pool:"lhws" ~workers
            ~wall_s:wall
            ~counters:(stat_counters (Lhws.stats p))
            ();
          Printf.printf "%8d %12.4f %14.1f\n%!" workers wall (kops ops wall)))
    (R.pick profile ~full:[ 4; 8 ] ~smoke:[ 2 ])

(* A wide tree of tiny tasks: thieves spend most of their time scanning
   for victims, so the cost of the candidate scan (previously an O(n)
   List.filter under the victim's lock) dominates.  Runs the full steal
   matrix — both lhws victim policies x both steal modes, plus the
   blocking baseline in both modes — so one-vs-half is measured on the
   same workload the policies are. *)
let steal_storm profile =
  R.section "CONT2 | steal-storm: tiny-task fork tree, steal policies x steal modes";
  let leaves = R.pick profile ~full:32768 ~smoke:256 in
  let spin = R.pick profile ~full:80 ~smoke:20 in
  Printf.printf "%d leaves, ~%d-iteration spin each\n" leaves spin;
  Printf.printf "%8s %-18s %12s %14s %10s %10s %12s\n" "workers" "policy" "wall (s)" "kleaves/s"
    "steals" "batched" "tasks/steal";
  let spin_leaf i =
    let acc = ref i in
    for k = 1 to spin do
      acc := (!acc * 31) + k
    done;
    Sys.opaque_identity !acc |> ignore;
    1
  in
  let report label workers wall (st : Core.stats) =
    Bench_json.record
      ~scenario:(Printf.sprintf "contention_steal_storm_%s" label)
      ~pool:"lhws" ~workers ~wall_s:wall ~counters:(stat_counters st) ();
    Printf.printf "%8d %-18s %12.4f %14.1f %10d %10d %12.2f\n%!" workers label wall
      (kops leaves wall) st.steals st.steals_batched
      (float_of_int st.tasks_stolen /. float_of_int (max 1 st.steals))
  in
  List.iter
    (fun workers ->
      List.iter
        (fun (label, policy, mode) ->
          Lhws.with_pool ~workers ~steal_policy:policy ~steal_mode:mode (fun p ->
              let v, wall =
                time (fun () ->
                    Lhws.run p (fun () ->
                        Lhws.parallel_map_reduce p ~lo:0 ~hi:leaves ~map:spin_leaf
                          ~combine:( + ) ~id:0))
              in
              R.expect (v = leaves);
              report label workers wall (Lhws.stats p)))
        [
          ("global", Lhws.Global_deque, Core.Steal_one);
          ("worker", Lhws.Worker_then_deque, Core.Steal_one);
          ("global_half", Lhws.Global_deque, Core.Steal_half);
          ("worker_half", Lhws.Worker_then_deque, Core.Steal_half);
        ];
      List.iter
        (fun (label, mode) ->
          Ws.with_pool ~workers ~steal_mode:mode (fun p ->
              let v, wall =
                time (fun () ->
                    Ws.run p (fun () ->
                        Ws.parallel_map_reduce p ~lo:0 ~hi:leaves ~map:spin_leaf ~combine:( + )
                          ~id:0))
              in
              R.expect (v = leaves);
              let st = Ws.stats p in
              Bench_json.record
                ~scenario:(Printf.sprintf "contention_steal_storm_%s" label)
                ~pool:"ws" ~workers ~wall_s:wall ~counters:(stat_counters st) ();
              Printf.printf "%8d %-18s %12.4f %14.1f %10d %10d %12.2f\n%!" workers label wall
                (kops leaves wall) st.steals st.steals_batched
                (float_of_int st.tasks_stolen /. float_of_int (max 1 st.steals))))
        [ ("ws_one", Core.Steal_one); ("ws_half", Core.Steal_half) ])
    (R.pick profile ~full:[ 4; 8 ] ~smoke:[ 2 ])

(* Many fibers sleeping tiny durations: every worker used to probe the
   timer's mutex plus a clock read on every loop iteration; here the heap
   is hot and the probes are the contention. *)
let timer_storm profile =
  R.section "CONT3 | timer-storm: tiny sleeps hammering the shared timer";
  let fibers = R.pick profile ~full:128 ~smoke:8 in
  let sleeps = R.pick profile ~full:20 ~smoke:3 in
  let d = 0.001 in
  let ops = fibers * sleeps in
  Printf.printf "%d fibers x %d sleeps of %.0fus (ideal wall ~%.3fs)\n" fibers sleeps (d *. 1e6)
    (float_of_int sleeps *. d);
  Printf.printf "%8s %12s %14s\n" "workers" "wall (s)" "ktimers/s";
  List.iter
    (fun workers ->
      Lhws.with_pool ~workers (fun p ->
          let (), wall =
            time (fun () ->
                Lhws.run p (fun () ->
                    Lhws.parallel_for p ~lo:0 ~hi:fibers (fun _ ->
                        for _ = 1 to sleeps do
                          Lhws.sleep p d
                        done)))
          in
          Bench_json.record ~scenario:"contention_timer_storm" ~pool:"lhws" ~workers
            ~wall_s:wall
            ~counters:(stat_counters (Lhws.stats p))
            ();
          Printf.printf "%8d %12.4f %14.1f\n%!" workers wall (kops ops wall)))
    (R.pick profile ~full:[ 4; 8 ] ~smoke:[ 2 ])

(* Spawn/suspend/resume round-trip latency, across every pool: awaiting a
   just-spawned child forces the parent through one full suspend/resume
   cycle per round on the latency-hiding pool (and through the helping
   loop on the blocking baseline, a thread join on the thread pool). *)
let ping_pong profile =
  R.section "CONT4 | ping-pong: await(async ()) round-trips per pool";
  let rounds = R.pick profile ~full:20000 ~smoke:50 in
  Printf.printf "%d rounds\n" rounds;
  Printf.printf "%8s %-10s %12s %14s\n" "workers" "pool" "wall (s)" "krounds/s";
  List.iter
    (fun workers ->
      List.iter
        (fun (pool : P.pool) ->
          let module Pool = (val pool : P.POOL) in
          let p = Pool.create ~workers () in
          Fun.protect
            ~finally:(fun () -> Pool.shutdown p)
            (fun () ->
              let (), wall =
                time (fun () ->
                    Pool.run p (fun () ->
                        for _ = 1 to rounds do
                          Pool.await p (Pool.async p (fun () -> ()))
                        done))
              in
              Bench_json.record ~scenario:"contention_ping_pong" ~pool:Pool.name ~workers
                ~wall_s:wall
                ~counters:(stat_counters (Pool.stats p))
                ();
              Printf.printf "%8d %-10s %12.4f %14.1f\n%!" workers Pool.name wall
                (kops rounds wall)))
        [ P.lhws; P.ws; P.threads ])
    (R.pick profile ~full:[ 4; 8 ] ~smoke:[ 2 ]);
  (* Channel ping-pong: two fibers handing a token back and forth, two
     suspensions + two cross-deque resumes per round (lhws only: the
     blocking pools cannot park a receiver). *)
  Printf.printf "channel token ping-pong (lhws):\n";
  Printf.printf "%8s %12s %14s\n" "workers" "wall (s)" "krounds/s";
  List.iter
    (fun workers ->
      Lhws.with_pool ~workers (fun p ->
          let (), wall =
            time (fun () ->
                Lhws.run p (fun () ->
                    let c1 = Channel.create () and c2 = Channel.create () in
                    let (), () =
                      Lhws.fork2 p
                        (fun () ->
                          for _ = 1 to rounds do
                            Channel.send c1 ();
                            Channel.recv c2
                          done)
                        (fun () ->
                          for _ = 1 to rounds do
                            Channel.recv c1;
                            Channel.send c2 ()
                          done)
                    in
                    ()))
          in
          Bench_json.record ~scenario:"contention_channel_ping_pong" ~pool:"lhws" ~workers
            ~wall_s:wall
            ~counters:(stat_counters (Lhws.stats p))
            ();
          Printf.printf "%8d %12.4f %14.1f\n%!" workers wall (kops rounds wall)))
    (R.pick profile ~full:[ 4; 8 ] ~smoke:[ 2 ])

let register () =
  R.register ~name:"contention_resume_storm" resume_storm;
  R.register ~name:"contention_steal_storm" steal_storm;
  R.register ~name:"contention_timer_storm" timer_storm;
  R.register ~name:"contention_ping_pong" ping_pong
