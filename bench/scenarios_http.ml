(* HTTP/1.1 serving scenarios: the c10k-class load story.

   The server runs in a forked child process (spawned via
   [Sys.executable_name --http-child ...], see bench/main.ml), for two
   reasons: the descriptor budget — 10k client sockets plus 10k server
   sockets will not fit one process under a 20k RLIMIT_NOFILE — and
   honesty: server and generator share nothing but the loopback wire.

   Two experiments:
   - http_keepalive: plaintext GETs over [conns] keep-alive connections,
     closed-loop, at two scales (1k and 10k connections at full profile),
     served once by a 2-worker latency-hiding pool (every connection a
     fiber parked on fd readiness) and once by the thread-per-task
     blocking baseline (every connection a live OS thread for its whole
     lifetime, plus a thread per request).  req/s and p99 are recorded
     per leg; bench_guard pins both against the committed baseline, and
     at the largest scale the latency-hiding pool must win the tail.
   - http_mixed_topo: a bimodal handler mix on one server — POST /echo
     I/O next to GET /fib/:n compute — riding a two-class topology in
     the child, so the compute route is pinned to the batch micropool
     and the echo route's p99 stays bounded by its own work. *)

module W = Lhws_workloads
module P = W.Pool_intf
module T = W.Topology
module R = Registry
module Reactor = Lhws_net.Reactor
module Http = Lhws_net.Http
module Load = Lhws_net.Load
module Net = Lhws_net.Net
module Conn = Lhws_net.Conn
module Io = Lhws_runtime.Io

(* ---------- the server child ---------- *)

(* One router for every child: the plaintext leg hits /plaintext, the
   mixed leg /echo and /fib/:n.  [dispatch] pins a route's class when
   the child runs a topology. *)
let child_router ?fib_dispatch ?echo_dispatch () =
  Http.Router.create
    [
      Http.Router.route ~meth:"GET" "/plaintext" (fun _ _ ->
          Http.text "Hello, World!");
      Http.Router.route ?dispatch:echo_dispatch ~meth:"POST" "/echo"
        (fun _ req -> Http.response req.Http.body);
      Http.Router.route ?dispatch:fib_dispatch ~meth:"GET" "/fib/:n"
        (fun params _ ->
          let n = int_of_string (List.assoc "n" params) in
          Http.text (string_of_int (W.Fib.seq n)));
    ]

let announce srv =
  let port =
    match Http.addr srv with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (* stdout carries exactly this line; the parent reads it to find us. *)
  Printf.printf "PORT %d\n%!" port

(* Block until the parent closes our stdin — its end-of-leg signal.
   The blocking variant is for the threaded child, where occupying the
   root task's thread costs nothing. *)
let wait_for_parent () =
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read Unix.stdin b 0 256 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* The fiber variant parks the root task on the stdin pipe through the
   reactor.  The whole child lifetime must stay inside one [Pool.run]:
   the calling thread is worker 0, so with [workers:1] nothing runs
   between [run] calls — returning from [run] to wait on the main
   thread deadlocks the pool. *)
let wait_for_parent_fiber rt =
  let c = Conn.create rt Unix.stdin in
  let b = Bytes.create 256 in
  let rec go () = if Conn.read c b 0 256 > 0 then go () in
  try go () with Net.Peer_closed | Net.Closed | End_of_file -> ()

let any_addr = Unix.ADDR_INET (Unix.inet_addr_loopback, 0)

(* 10k simultaneous connects overflow the default 128-deep listen queue:
   the kernel drops the excess SYNs and those clients sit out 1 s+
   retransmit backoffs while the acceptor needs ~80 wake-ups to drain
   the arrivals 128 at a time.  Both child flavors listen with the
   deepest queue the kernel grants (net.core.somaxconn; listen() clamps
   silently), so acceptance takes a handful of backlog drains and the
   measured latencies are service, not SYN retries. *)
let child_config =
  {
    Http.default_config with
    listener =
      { Http.default_config.listener with Lhws_net.Listener.backlog = 10000 };
  }

(* argv after "--http-child": ["lhws"; workers] | ["lhws-aged"; workers]
   | ["threads"; max_threads] | ["topo"].  Serves until stdin closes, then
   drains and exits. *)
let child_main args =
  ignore (Io.raise_nofile 20000 : int);
  match Array.to_list args with
  | [ (("lhws" | "lhws-aged") as flavor); workers ] ->
      let workers = int_of_string workers in
      (* The aged flavor serves with [Aged_fifo] resume fairness: parked
         connection fibers are resumed oldest-batch-first, the
         starvation-bounding leg of the fairness comparison. *)
      let resume_order =
        if flavor = "lhws-aged" then Lhws_runtime.Scheduler_core.Aged_fifo
        else Lhws_runtime.Scheduler_core.Newest_first
      in
      Lhws_runtime.Lhws_pool.with_pool ~workers ~resume_order (fun p ->
          let rt =
            Reactor.fibers
              ~register:(fun ~pending ~syscalls poll ->
                Lhws_runtime.Lhws_pool.register_poller p ?pending ?syscalls poll)
              ()
          in
          let module Pool = P.Lhws_instance in
          Pool.run p (fun () ->
              let srv =
                Http.serve_router (module Pool) p rt ~config:child_config any_addr
                  ~router:(child_router ())
              in
              announce srv;
              wait_for_parent_fiber rt;
              Http.shutdown ~grace:2. srv))
  | [ "threads"; max_threads ] ->
      let max_threads = int_of_string max_threads in
      let p = Lhws_runtime.Threaded_pool.create ~max_threads () in
      Fun.protect
        ~finally:(fun () -> Lhws_runtime.Threaded_pool.shutdown p)
        (fun () ->
          let rt = Reactor.blocking () in
          let module Pool = P.Threaded_instance in
          Pool.run p (fun () ->
              let srv =
                Http.serve_router (module Pool) p rt ~config:child_config any_addr
                  ~router:(child_router ())
              in
              announce srv;
              wait_for_parent ();
              Http.shutdown ~grace:2. srv))
  | [ "topo" ] ->
      T.with_topology ~name:"httpbench"
        [ T.spec ~workers:1 T.Latency; T.spec ~workers:1 T.Batch ]
        (fun topo ->
          Lhws_runtime.Lhws_pool.with_pool ~workers:1 (fun drv ->
              let rt =
                Reactor.fibers
                  ~register:(fun ~pending ~syscalls poll ->
                    Lhws_runtime.Lhws_pool.register_poller drv ?pending
                      ?syscalls poll)
                  ()
              in
              let module Pool = P.Lhws_instance in
              let router =
                child_router
                  ~fib_dispatch:(T.dispatcher topo ~class_:T.Batch)
                  ~echo_dispatch:(T.dispatcher topo ~class_:T.Latency)
                  ()
              in
              Pool.run drv (fun () ->
                  let srv =
                    Http.serve_router (module Pool) drv rt ~config:child_config any_addr ~router
                  in
                  announce srv;
                  wait_for_parent_fiber rt;
                  Http.shutdown ~grace:2. srv)))
  | args ->
      Printf.eprintf "unknown --http-child spec: %s\n"
        (String.concat " " args);
      exit 2

(* ---------- spawning and stopping the child ---------- *)

type child = { pid : int; to_child : Unix.file_descr; addr : Unix.sockaddr }

let spawn_child args =
  (* cloexec on every end: the child must inherit nothing but the 0/1
     dups create_process makes, or it holds the write end of its own
     stdin pipe and can never see the parent's EOF. *)
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let exe = Sys.executable_name in
  let pid =
    Unix.create_process exe
      (Array.append [| exe; "--http-child" |] args)
      in_r out_w Unix.stderr
  in
  Unix.close in_r;
  Unix.close out_w;
  (* First (only) stdout line: "PORT <n>". *)
  let buf = Buffer.create 16 in
  let b = Bytes.create 1 in
  let rec line () =
    match Unix.read out_r b 0 1 with
    | 0 -> failwith "http server child exited before announcing its port"
    | _ ->
        let c = Bytes.get b 0 in
        if c = '\n' then Buffer.contents buf
        else begin
          Buffer.add_char buf c;
          line ()
        end
  in
  let l = line () in
  Unix.close out_r;
  let port = Scanf.sscanf l "PORT %d" Fun.id in
  {
    pid;
    to_child = in_w;
    addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port);
  }

let stop_child c =
  (try Unix.close c.to_child with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] c.pid)

let with_child args f =
  let c = spawn_child args in
  Fun.protect ~finally:(fun () -> stop_child c) (fun () -> f c.addr)

(* The measuring side: the generator always runs on a latency-hiding
   pool (10k client connections need parked fibers too); what varies
   between legs is the server child behind the wire. *)
let with_client_rt f =
  Lhws_runtime.Lhws_pool.with_pool ~workers:2 (fun p ->
      let rt =
        Reactor.fibers
          ~register:(fun ~pending ~syscalls poll ->
            Lhws_runtime.Lhws_pool.register_poller p ?pending ?syscalls poll)
          ()
      in
      f p rt)

let record ~scenario ~pool (r : Load.report) =
  Bench_json.record ~scenario ~pool ~workers:2 ~wall_s:r.Load.wall_s
    ~counters:
      [
        ("requests", r.Load.total);
        ("errors", r.Load.errors);
        ("connect_failures", r.Load.connect_failures);
        ("non_2xx", r.Load.non_2xx);
        ("throughput_rps", int_of_float r.Load.throughput_rps);
        ("p50_us", int_of_float r.Load.p50_us);
        ("p99_us", int_of_float r.Load.p99_us);
        ("mean_us", int_of_float r.Load.mean_us);
        ("max_rounds_behind", r.Load.max_rounds_behind);
        ("slowest_conn_mean_us", int_of_float r.Load.slowest_conn_mean_us);
      ]
    ()

let print_leg name (r : Load.report) =
  Printf.printf
    "  %-10s %8.0f req/s   p50 %8.0f us   p99 %8.0f us   mean %8.0f us   \
     behind %3d   (%d req, %d err, %d non-2xx, %d connect fail)\n\
     %!"
    name r.Load.throughput_rps r.Load.p50_us r.Load.p99_us r.Load.mean_us
    r.Load.max_rounds_behind r.Load.total r.Load.errors r.Load.non_2xx
    r.Load.connect_failures

(* ---------- HTTP1 | plaintext keep-alive at 1k / 10k connections ---------- *)

let keepalive profile =
  R.section
    "HTTP1 | plaintext keep-alive: closed-loop GETs, latency-hiding server vs \
     thread-per-connection blocking server (forked child)";
  ignore (Io.raise_nofile 20000 : int);
  let legs = R.pick profile ~full:[ (1000, 20); (10000, 5) ] ~smoke:[ (64, 15); (256, 8) ] in
  let last_conns = fst (List.nth legs (List.length legs - 1)) in
  List.iter
    (fun (conns, iters) ->
      let run_leg child_args =
        with_child child_args (fun addr ->
            with_client_rt (fun p rt ->
                let module Pool = P.Lhws_instance in
                Pool.run p (fun () ->
                    Load.run_http (module Pool) p rt ~conns ~inflight:1 ~iters
                      ~req:(fun _ -> Load.get "/plaintext")
                      addr)))
      in
      Printf.printf "\n%d keep-alive connections x %d requests each:\n%!" conns
        iters;
      let lhws = run_leg [| "lhws"; "2" |] in
      print_leg "lhws" lhws;
      (* The age-fair server: same pool, resumes serviced oldest-first. *)
      let aged = run_leg [| "lhws-aged"; "2" |] in
      print_leg "lhws-aged" aged;
      (* Thread cap: one live thread per connection for the whole leg,
         plus headroom for the per-request handler threads. *)
      let threads = run_leg [| "threads"; string_of_int (conns + 128) |] in
      print_leg "threads" threads;
      (* Every offered request must come back 200 on all three servers:
         the blocking baseline is slower, not lossy. *)
      R.expect
        (lhws.Load.errors = 0 && lhws.Load.non_2xx = 0
        && lhws.Load.connect_failures = 0);
      R.expect
        (aged.Load.errors = 0 && aged.Load.non_2xx = 0
        && aged.Load.connect_failures = 0);
      R.expect
        (threads.Load.errors = 0 && threads.Load.non_2xx = 0
        && threads.Load.connect_failures = 0);
      (* The c10k claim: at the largest scale the latency-hiding server
         wins the tail. *)
      if conns = last_conns then R.expect (lhws.Load.p99_us <= threads.Load.p99_us);
      (* The fairness claim: under [Aged_fifo] no connection starves, so
         the tail stays a bounded multiple of the mean.  The absolute
         grace absorbs the connect transient at smoke sizes (hundreds of
         conns dial one acceptor at t=0, so early requests of
         late-accepted connections carry admission latency that is not
         scheduler unfairness); at full c10k scale the mean is large and
         the 3x ratio does the work. *)
      if conns = last_conns then
        R.expect
          (aged.Load.p99_us <= (3. *. aged.Load.mean_us) +. 30_000.);
      record ~scenario:(Printf.sprintf "http_plaintext_c%d" conns) ~pool:"lhws" lhws;
      record ~scenario:(Printf.sprintf "http_plaintext_c%d" conns) ~pool:"lhws-aged"
        aged;
      record ~scenario:(Printf.sprintf "http_plaintext_c%d" conns) ~pool:"threads"
        threads;
      Printf.printf "  p99 threads/lhws: %.2fx   p99/mean lhws: %.2fx  aged: %.2fx\n%!"
        (threads.Load.p99_us /. Float.max 1. lhws.Load.p99_us)
        (lhws.Load.p99_us /. Float.max 1. lhws.Load.mean_us)
        (aged.Load.p99_us /. Float.max 1. aged.Load.mean_us))
    legs

(* ---------- HTTP2 | mixed CPU+I/O handlers on a topology ---------- *)

let mixed profile =
  R.section
    "HTTP2 | mixed handlers, two-class topology in the child: GET /fib/:n \
     pinned to the batch pool, POST /echo on the latency pool";
  ignore (Io.raise_nofile 20000 : int);
  let io_conns = R.pick profile ~full:128 ~smoke:24 in
  let io_iters = R.pick profile ~full:40 ~smoke:10 in
  let cpu_conns = R.pick profile ~full:4 ~smoke:2 in
  let cpu_iters = R.pick profile ~full:25 ~smoke:8 in
  let fib_n = R.pick profile ~full:20 ~smoke:15 in
  let body = Bytes.of_string "mixed-load-echo-payload" in
  let reports =
    with_child [| "topo" |] (fun addr ->
        with_client_rt (fun p rt ->
            let module Pool = P.Lhws_instance in
            Pool.run p (fun () ->
                Load.run_classes (module Pool) p rt
                  ~classes:
                    [
                      Load.http_spec ~conns:io_conns ~inflight:2 ~iters:io_iters
                        ~req:(fun _ ->
                          { Load.meth = "POST"; target = "/echo"; req_body = Some body })
                        "io";
                      Load.http_spec ~conns:cpu_conns ~inflight:2 ~iters:cpu_iters
                        ~req:(fun _ -> Load.get (Printf.sprintf "/fib/%d" fib_n))
                        "cpu";
                    ]
                  addr)))
  in
  let io = List.assoc "io" reports and cpu = List.assoc "cpu" reports in
  Printf.printf "%d echo conns + %d fib(%d) conns, concurrently:\n%!" io_conns
    cpu_conns fib_n;
  print_leg "io/echo" io;
  print_leg "cpu/fib" cpu;
  R.expect (io.Load.errors = 0 && io.Load.non_2xx = 0 && io.Load.connect_failures = 0);
  R.expect (cpu.Load.errors = 0 && cpu.Load.non_2xx = 0 && cpu.Load.connect_failures = 0);
  record ~scenario:"http_mixed_topo" ~pool:"io-latency" io;
  record ~scenario:"http_mixed_topo" ~pool:"cpu-batch" cpu

let register () =
  R.register ~name:"http_keepalive" ~skip_in_quick:true keepalive;
  R.register ~name:"http_mixed_topo" ~skip_in_quick:true mixed
