(* Policy ablations and stress sweeps on the simulator: steal target,
   resume injection, resume target, multiprogramming, and the
   large-U scaling claim. *)

module Generate = Lhws_dag.Generate
open Lhws_core
module R = Registry

let ablation_steal profile =
  R.section "AB1 | Steal policy: random global deque (analyzed) vs random worker (Section 6)";
  let ps = R.pick profile ~full:[ 4; 16 ] ~smoke:[ 4 ] in
  let workloads =
    R.pick profile
      ~full:
        [
          ("map_reduce", lazy (Generate.map_reduce ~n:400 ~leaf_work:10 ~latency:100));
          ("server", lazy (Generate.server ~n:120 ~f_work:20 ~latency:50));
        ]
      ~smoke:[ ("map_reduce", lazy (Generate.map_reduce ~n:30 ~leaf_work:5 ~latency:20)) ]
  in
  Printf.printf "%-16s %4s | %10s %10s %8s | %10s %10s %8s\n" "workload" "P" "deq:rounds"
    "attempts" "hit%" "wrk:rounds" "attempts" "hit%";
  List.iter
    (fun (name, dag) ->
      let dag = Lazy.force dag in
      List.iter
        (fun p ->
          let run_with policy =
            Lhws_sim.run ~config:{ Config.default with steal_policy = policy } dag ~p
          in
          let a = run_with Config.Steal_global_deque in
          let b = run_with Config.Steal_worker_then_deque in
          let hit (r : Run.t) =
            100.
            *. float_of_int r.Run.stats.Stats.steals_ok
            /. float_of_int (max 1 r.Run.stats.Stats.steal_attempts)
          in
          Printf.printf "%-16s %4d | %10d %10d %8.1f | %10d %10d %8.1f\n" name p a.Run.rounds
            a.Run.stats.Stats.steal_attempts (hit a) b.Run.rounds
            b.Run.stats.Stats.steal_attempts (hit b))
        ps)
    workloads;
  Printf.printf "%!"

let ablation_resume profile =
  R.section "AB2 | Resume injection: balanced pfor tree (paper) vs linear chain";
  Printf.printf
    "(resume_burst: all n suspended tasks resume in the same round on one deque)\n";
  let ns = R.pick profile ~full:[ 64; 256; 1024 ] ~smoke:[ 32 ] in
  let ps = R.pick profile ~full:[ 4; 16 ] ~smoke:[ 4 ] in
  Printf.printf "%6s %4s | %12s %12s %12s\n" "n" "P" "pfor rounds" "linear" "linear/pfor";
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          let dag = Generate.resume_burst ~n ~leaf_work:3 ~latency:50 in
          let run_with policy =
            (Lhws_sim.run ~config:{ Config.default with resume_policy = policy } dag ~p)
              .Run.rounds
          in
          let tree = run_with Config.Resume_pfor_tree in
          let lin = run_with Config.Resume_linear in
          Printf.printf "%6d %4d | %12d %12d %12.2f\n" n p tree lin
            (float_of_int lin /. float_of_int tree))
        ps)
    ns;
  Printf.printf "%!"

let ablation_resume_target profile =
  R.section
    "AB3 | Resume target: original deque (paper) vs fresh deque per resume (Section 7's \
     Spoonhower variant)";
  let ps = R.pick profile ~full:[ 4; 16 ] ~smoke:[ 4 ] in
  let workloads =
    R.pick profile
      ~full:
        [
          ( "map_reduce(400,10,100)",
            lazy (Generate.map_reduce ~n:400 ~leaf_work:10 ~latency:100) );
          ("server(120,20,50)", lazy (Generate.server ~n:120 ~f_work:20 ~latency:50));
          ("burst(256,3,50)", lazy (Generate.resume_burst ~n:256 ~leaf_work:3 ~latency:50));
        ]
      ~smoke:
        [ ("map_reduce(30,5,20)", lazy (Generate.map_reduce ~n:30 ~leaf_work:5 ~latency:20)) ]
  in
  Printf.printf "%-24s %4s | %10s %6s %6s | %10s %6s %6s\n" "workload" "P" "orig:rnds" "maxdq"
    "alloc" "fresh:rnds" "maxdq" "alloc";
  List.iter
    (fun (name, dag) ->
      let dag = Lazy.force dag in
      List.iter
        (fun p ->
          let run_with target =
            Lhws_sim.run ~config:{ Config.default with resume_target = target } dag ~p
          in
          let a = run_with Config.Original_deque in
          let b = run_with Config.Fresh_deque in
          Printf.printf "%-24s %4d | %10d %6d %6d | %10d %6d %6d\n" name p a.Run.rounds
            a.Run.stats.Stats.max_deques_per_worker a.Run.stats.Stats.deques_allocated
            b.Run.rounds b.Run.stats.Stats.max_deques_per_worker
            b.Run.stats.Stats.deques_allocated)
        ps)
    workloads;
  Printf.printf
    "(the paper's policy recycles deques and respects Lemma 7; the fresh-deque variant's \
     allocation scales with resumes)\n%!"

let ablation_steal_mode profile =
  R.section
    "AB5 | Steal mode: one-task vs steal-half as steal latency grows (the steals-cost-latency \
     regime of arXiv 1805.01768 / 1805.00857)";
  Printf.printf
    "(wide map-reduce, P=2, rounds summed over seeds; speedup = one-task rounds / steal-half \
     rounds)\n";
  let nseeds = R.pick profile ~full:20 ~smoke:6 in
  let seeds = List.init nseeds (fun i -> 1 + (37 * i)) in
  let ls = R.pick profile ~full:[ 0; 8; 32; 64; 128; 256 ] ~smoke:[ 0; 32; 256 ] in
  let dag = Generate.map_reduce ~n:128 ~leaf_work:1 ~latency:2 in
  Printf.printf "%8s | %10s %10s %8s | %10s %12s\n" "steal L" "one:rnds" "half:rnds" "speedup"
    "half:steals" "tasks/steal";
  List.iter
    (fun steal_latency ->
      let total mode =
        List.fold_left
          (fun (rounds, steals, tasks) seed ->
            let r =
              Lhws_sim.run
                ~config:{ Config.default with steal_mode = mode; steal_latency; seed }
                dag ~p:2
            in
            ( rounds + r.Run.rounds,
              steals + r.Run.stats.Stats.steals_ok,
              tasks + r.Run.stats.Stats.tasks_stolen ))
          (0, 0, 0) seeds
      in
      let one, _, _ = total Config.Steal_one in
      let half, hsteals, htasks = total Config.Steal_half in
      let speedup = float_of_int one /. float_of_int half in
      Bench_json.record
        ~scenario:(Printf.sprintf "ablation_steal_mode_L%d" steal_latency)
        ~pool:"lhws-sim" ~workers:2 ~rounds:half ~speedup ();
      Printf.printf "%8d | %10d %10d %8.3f | %10d %12.2f\n" steal_latency one half speedup
        hsteals
        (float_of_int htasks /. float_of_int (max 1 hsteals)))
    ls;
  Printf.printf
    "(parity at L=0; one-task marginally ahead at moderate L on fork trees; steal-half wins \
     once the per-steal latency dominates)\n%!"

let multiprogrammed profile =
  R.section "MP | Multiprogrammed environment (ABP setting): availability sweep, LHWS P=8";
  let n = R.pick profile ~full:300 ~smoke:30 in
  Printf.printf "%12s %10s %14s %18s\n" "availability" "rounds" "unavailable" "rounds*avail";
  let dag = Generate.map_reduce ~n ~leaf_work:10 ~latency:80 in
  List.iter
    (fun (label, k) ->
      let availability =
        if k = 4 then None
        else Some (fun round worker -> ((round * 31) + (worker * 17)) mod 4 < k)
      in
      let config = { Config.default with availability } in
      let run = Lhws_sim.run ~config dag ~p:8 in
      Printf.printf "%12s %10d %14d %18.0f\n" label run.Run.rounds
        run.Run.stats.Stats.unavailable_rounds
        (float_of_int run.Run.rounds *. (float_of_int k /. 4.)))
    [ ("100%", 4); ("75%", 3); ("50%", 2); ("25%", 1) ];
  Printf.printf
    "(effective work rate scales with availability: rounds*avail stays near the dedicated \
     rounds)\n%!"

let scale profile =
  R.section
    "SCALE | Large numbers of suspended threads (Section 6.1's closing claim) + Theorem 3 \
     (amortized O(1) per round)";
  let ns = R.pick profile ~full:[ 1_000; 10_000; 50_000 ] ~smoke:[ 500 ] in
  Printf.printf "%8s %10s %12s %10s %12s %14s\n" "n=U" "rounds" "max susp" "batches"
    "wall (ms)" "ns/worker-rnd";
  List.iter
    (fun n ->
      (* Everything suspends almost immediately and stays suspended for a
         long time; the scheduler must then digest n resumed vertices. *)
      let dag = Generate.map_reduce ~n ~leaf_work:1 ~latency:1_000_000 in
      let t0 = Unix.gettimeofday () in
      let run = Lhws_sim.run dag ~p:16 in
      let dt = Unix.gettimeofday () -. t0 in
      let stepped = run.Run.rounds - run.Run.stats.Stats.fast_forwarded_rounds in
      Printf.printf "%8d %10d %12d %10d %12.1f %14.0f\n" n run.Run.rounds
        run.Run.stats.Stats.max_live_suspended run.Run.stats.Stats.pfor_batches (dt *. 1000.)
        (dt *. 1e9 /. float_of_int (max 1 (stepped * 16))))
    ns;
  Printf.printf
    "(max susp = n: all reads in flight at once; per-round cost stays flat as U grows — \
     Theorem 3's amortized O(1))\n%!"

let register () =
  R.register ~name:"ablation_steal" ablation_steal;
  R.register ~name:"ablation_resume" ablation_resume;
  R.register ~name:"ablation_resume_target" ablation_resume_target;
  R.register ~name:"ablation_steal_mode" ablation_steal_mode;
  R.register ~name:"multiprogrammed" multiprogrammed;
  R.register ~name:"scale" scale
