(* Micropool scenarios: several pools in one process, classes pinned.

   Two experiments:
   - micropools_bimodal: a bimodal service — short RPC handlers next to
     long batch compute jobs in the same process — measured three ways:
     one shared pool (handlers queue behind batch jobs), a 2-pool
     topology (latency class isolated, so its p99 is bounded by its own
     work), and the same topology with the latency pool scavenging the
     batch pool (the isolation/utilisation trade-off made visible).
     The guarded sample is the shared/topology p99 ratio: splitting the
     pool must improve the RPC tail.  Pools are deliberately small (the
     same worker budget, 2 shared vs 1+1 split) so the comparison is a
     queueing-discipline fact, not a core-count fact — it holds even on
     a single-core host, where extra spinning domains would only add
     scheduler noise to both legs.
   - micropools_scavenge: the payback side of scavenging, with the RPC
     side quiet — an idle latency pool raids the batch pool's queue, so
     batch drain time improves (on multi-core hardware) and the
     scavenge books must balance: every task counted scavenged by the
     thief is counted donated by its victim. *)

module W = Lhws_workloads
module P = W.Pool_intf
module T = W.Topology
module R = Registry
module Reactor = Lhws_net.Reactor
module Listener = Lhws_net.Listener
module Rpc = Lhws_net.Rpc
module Load = Lhws_net.Load

let with_lhws_rt ~workers f =
  Lhws_runtime.Lhws_pool.with_pool ~workers (fun p ->
      let rt =
        Reactor.fibers
          ~register:(fun ~pending ~syscalls poll ->
            Lhws_runtime.Lhws_pool.register_poller p ?pending ?syscalls poll)
          ()
      in
      f p rt)

(* CPU-bound spin: a handler or batch job that genuinely occupies its
   worker, so pool structure (not latency hiding) is what's measured. *)
let spin_for seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ()
  done

let scavenge_totals stats =
  List.fold_left
    (fun (sc, dn) (_, s) ->
      Lhws_runtime.Scheduler_core.
        (sc + s.tasks_scavenged, dn + s.tasks_donated))
    (0, 0) stats

(* One bimodal leg: a service topology (its latency class takes the RPC
   handlers, [batch_class] the compute jobs), a driver pool running the
   listener plumbing and the closed-loop generator.  Returns the RPC
   report and the topology's final per-class stats. *)
let bimodal_leg ~specs ~batch_class ~handler_s ~batch_s ~n_batch ~conns
    ~inflight ~iters =
  T.with_topology ~name:"svc" specs (fun topo ->
      with_lhws_rt ~workers:1 (fun drv rt ->
          let module Pool = P.Lhws_instance in
          Pool.run drv (fun () ->
              let l =
                Rpc.serve
                  (module Pool)
                  drv rt
                  ~dispatch:(T.dispatcher topo ~class_:T.Latency)
                  (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                  ~handler:(fun b ->
                    spin_for handler_s;
                    b)
              in
              let batch_done = Atomic.make 0 in
              for _ = 1 to n_batch do
                T.submit topo ~class_:batch_class (fun () ->
                    spin_for batch_s;
                    Atomic.incr batch_done)
              done;
              let reports =
                Load.run_classes
                  (module Pool)
                  drv rt
                  ~classes:[ Load.class_spec ~conns ~inflight ~iters "rpc" ]
                  (Listener.addr l)
              in
              (* Let the batch tail drain so every leg pays for its whole
                 submitted load and the stats are settled. *)
              while Atomic.get batch_done < n_batch do
                Pool.sleep drv 0.002
              done;
              Listener.shutdown ~grace:5. l;
              let report = List.assoc "rpc" reports in
              R.expect (report.Load.errors = 0);
              (report, T.stats topo))))

let bimodal profile =
  R.section
    "MP1 | bimodal service: RPC p99 on one shared pool vs a 2-pool topology \
     (latency | batch), with and without scavenging";
  let handler_s = R.pick profile ~full:0.001 ~smoke:0.0005 in
  let batch_s = R.pick profile ~full:0.08 ~smoke:0.06 in
  let n_batch = R.pick profile ~full:24 ~smoke:10 in
  let conns = R.pick profile ~full:4 ~smoke:2 in
  let inflight = R.pick profile ~full:4 ~smoke:4 in
  let iters = R.pick profile ~full:60 ~smoke:15 in
  let run ~specs ~batch_class =
    bimodal_leg ~specs ~batch_class ~handler_s ~batch_s ~n_batch ~conns ~inflight
      ~iters
  in
  (* Shared: one 2-worker pool owns both classes, so a decoded request
     waits behind whatever batch job is ahead of it — its p99 is at
     least one batch-job length, by construction. *)
  let shared, _ =
    run ~specs:[ T.spec ~workers:2 T.Latency ] ~batch_class:T.Latency
  in
  (* Topology: the same worker budget split 1 + 1; batch jobs can no
     longer run ahead of handlers on the latency worker. *)
  let split_specs = [ T.spec ~workers:1 T.Latency; T.spec ~workers:1 T.Batch ] in
  let topo, _ = run ~specs:split_specs ~batch_class:T.Batch in
  (* Scavenging: the latency pool may raid the batch queue when idle —
     utilisation back, at the price of batch jobs sometimes landing on a
     latency worker mid-load.  Reported, not guarded. *)
  let scav_specs =
    [ T.spec ~workers:1 ~scavenges:T.Batch T.Latency; T.spec ~workers:1 T.Batch ]
  in
  let scav, scav_stats = run ~specs:scav_specs ~batch_class:T.Batch in
  let scavenged, donated = scavenge_totals scav_stats in
  let p99_ratio = shared.Load.p99_us /. Float.max 1. topo.Load.p99_us in
  (* The tentpole claim: splitting the pool improves the RPC tail. *)
  R.expect (p99_ratio > 1.);
  (* The books balance even under live RPC load. *)
  R.expect (scavenged = donated);
  Bench_json.record ~scenario:"micropools_bimodal" ~pool:"lhws-shared" ~workers:2
    ~wall_s:shared.Load.wall_s
    ~counters:
      [
        ("p50_us", int_of_float shared.Load.p50_us);
        ("p99_us", int_of_float shared.Load.p99_us);
        ("errors", shared.Load.errors);
      ]
    ();
  Bench_json.record ~scenario:"micropools_bimodal" ~pool:"lhws-topo" ~workers:2
    ~wall_s:topo.Load.wall_s ~speedup:p99_ratio
    ~counters:
      [
        ("p50_us", int_of_float topo.Load.p50_us);
        ("p99_us", int_of_float topo.Load.p99_us);
        ("errors", topo.Load.errors);
      ]
    ();
  Bench_json.record ~scenario:"micropools_bimodal" ~pool:"lhws-topo-scav"
    ~workers:2 ~wall_s:scav.Load.wall_s
    ~counters:
      [
        ("p50_us", int_of_float scav.Load.p50_us);
        ("p99_us", int_of_float scav.Load.p99_us);
        ("tasks_scavenged", scavenged);
        ("tasks_donated", donated);
      ]
    ();
  Printf.printf
    "bimodal (%d batch jobs x %.0fms vs %d RPCs x %.1fms):\n\
     %-28s p50 %8.0f us   p99 %8.0f us\n\
     %-28s p50 %8.0f us   p99 %8.0f us\n\
     %-28s p50 %8.0f us   p99 %8.0f us  (%d tasks scavenged)\n\
     shared/topology p99 ratio: %.1fx\n\
     %!"
    n_batch (batch_s *. 1000.)
    (conns * inflight * iters)
    (handler_s *. 1000.) "shared pool (2w)" shared.Load.p50_us shared.Load.p99_us
    "topology 1w+1w" topo.Load.p50_us topo.Load.p99_us "topology + scavenging"
    scav.Load.p50_us scav.Load.p99_us scavenged p99_ratio

(* Quiet-RPC side: how fast does a batch backlog drain when the latency
   pool is idle?  Without scavenging its two workers sit out; with the
   edge they raid the batch queue.  On a multi-core box that approaches
   2x; the invariant checked everywhere is that the scavenge counters
   stay consistent. *)
let scavenge_drain profile =
  R.section "MP2 | idle latency pool scavenging a batch backlog";
  let batch_s = R.pick profile ~full:0.02 ~smoke:0.008 in
  let n_batch = R.pick profile ~full:64 ~smoke:24 in
  let drain ~scavenging =
    let specs =
      if scavenging then
        [ T.spec ~workers:2 ~scavenges:T.Batch T.Latency; T.spec ~workers:2 T.Batch ]
      else [ T.spec ~workers:2 T.Latency; T.spec ~workers:2 T.Batch ]
    in
    T.with_topology ~name:"drain" specs (fun topo ->
        let batch_done = Atomic.make 0 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to n_batch do
          T.submit topo ~class_:T.Batch (fun () ->
              spin_for batch_s;
              Atomic.incr batch_done)
        done;
        while Atomic.get batch_done < n_batch do
          Unix.sleepf 0.001
        done;
        let wall = Unix.gettimeofday () -. t0 in
        (* Settle: no loot is left, so the counters are final. *)
        Unix.sleepf 0.02;
        (wall, scavenge_totals (T.stats topo)))
  in
  let t_iso, _ = drain ~scavenging:false in
  let t_scav, (scavenged, donated) = drain ~scavenging:true in
  let speedup = t_iso /. Float.max 1e-9 t_scav in
  R.expect (scavenged > 0);
  R.expect (scavenged = donated);
  Bench_json.record ~scenario:"micropools_scavenge" ~pool:"isolated" ~workers:4
    ~wall_s:t_iso ();
  Bench_json.record ~scenario:"micropools_scavenge" ~pool:"scavenging" ~workers:4
    ~wall_s:t_scav ~speedup
    ~counters:[ ("tasks_scavenged", scavenged); ("tasks_donated", donated) ]
    ();
  Printf.printf
    "drain %d x %.0fms batch jobs: isolated %.3fs, scavenging %.3fs (%.2fx), %d \
     tasks scavenged (= %d donated)\n\
     %!"
    n_batch (batch_s *. 1000.) t_iso t_scav speedup scavenged donated

let register () =
  R.register ~name:"micropools_bimodal" ~skip_in_quick:true bimodal;
  R.register ~name:"micropools_scavenge" ~skip_in_quick:true scavenge_drain
