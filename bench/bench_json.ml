(* Machine-readable benchmark samples, written as a JSON array alongside
   the human-readable tables and CSVs.  Hand-rolled serialization: the
   schema is flat and the repo takes no JSON dependency. *)

type sample = {
  scenario : string;
  pool : string;  (* "lhws", "ws", "threads", "lhws-sim", "ws-sim", "greedy" *)
  workers : int;
  wall_s : float option;  (* real pools: elapsed wall-clock *)
  rounds : int option;  (* simulator runs: schedule length *)
  speedup : float option;
  counters : (string * int) list;  (* unified pool stats, sim stats, ... *)
}

let samples : sample list ref = ref []

let record ?wall_s ?rounds ?speedup ?(counters = []) ~scenario ~pool ~workers () =
  samples := { scenario; pool; workers; wall_s; rounds; speedup; counters } :: !samples

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_field name v = Printf.sprintf {|"%s":%.6g|} name v
let int_field name v = Printf.sprintf {|"%s":%d|} name v

let sample_to_json s =
  let fields =
    [
      Printf.sprintf {|"scenario":"%s"|} (escape s.scenario);
      Printf.sprintf {|"pool":"%s"|} (escape s.pool);
      int_field "workers" s.workers;
    ]
    @ (match s.wall_s with Some v -> [ float_field "wall_s" v ] | None -> [])
    @ (match s.rounds with Some v -> [ int_field "rounds" v ] | None -> [])
    @ (match s.speedup with Some v -> [ float_field "speedup" v ] | None -> [])
    @
    match s.counters with
    | [] -> []
    | cs ->
        [
          Printf.sprintf {|"counters":{%s}|}
            (String.concat "," (List.map (fun (k, v) -> int_field (escape k) v) cs));
        ]
  in
  "{" ^ String.concat "," fields ^ "}"

let to_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf ("  " ^ sample_to_json s))
    (List.rev !samples);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let write ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json ()))

let count () = List.length !samples
