(* Socket-serving scenarios: the serving stack measured over real
   loopback connections rather than simulated latency.

   Two experiments:
   - net_echo_load: RPC echo throughput under the closed-loop generator,
     server and clients multiplexed as fibers on one latency-hiding pool.
   - net_map_reduce: the paper's Figure 11 map-reduce where every map
     input is fetched from a remote data server over a small fixed set of
     connections, with the per-fetch latency δ induced server-side.  The
     latency-hiding pool pipelines all outstanding fetches over the
     connections; the thread-per-task blocking baseline holds a
     connection for the whole round trip, serialising the δs.  The
     recorded self-speedup (blocking / latency-hiding wall-clock) is
     regression-guarded against the committed baselines. *)

module W = Lhws_workloads
module P = W.Pool_intf
module R = Registry
module Reactor = Lhws_net.Reactor
module Listener = Lhws_net.Listener
module Rpc = Lhws_net.Rpc
module Load = Lhws_net.Load
module Nmr = Lhws_net.Net_map_reduce
module Fault = Lhws_net.Fault
module Rs = Lhws_net.Resilience

let with_lhws_rt ~workers ?fault ?(legacy = false) f =
  Lhws_runtime.Lhws_pool.with_pool ~workers (fun p ->
      let rt =
        Reactor.fibers
          ~register:(fun ~pending ~syscalls poll ->
            Lhws_runtime.Lhws_pool.register_poller p ?pending ?syscalls poll)
          ?fault ~legacy ()
      in
      f p rt)

let echo profile =
  R.section "NET1 | RPC echo over loopback: closed-loop load on one latency-hiding pool";
  let workers = 2 in
  let conns = R.pick profile ~full:8 ~smoke:2 in
  let inflight = R.pick profile ~full:8 ~smoke:4 in
  let iters = R.pick profile ~full:200 ~smoke:25 in
  let report =
    with_lhws_rt ~workers (fun p rt ->
        let module Pool = P.Lhws_instance in
        Pool.run p (fun () ->
            let l =
              Rpc.serve
                (module Pool)
                p rt
                (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                ~handler:Fun.id
            in
            let r = Load.run (module Pool) p rt ~conns ~inflight ~iters (Listener.addr l) in
            Listener.shutdown ~grace:5. l;
            r))
  in
  R.expect (report.Load.errors = 0);
  Bench_json.record ~scenario:"net_echo_load" ~pool:"lhws" ~workers ~wall_s:report.Load.wall_s
    ~counters:
      [
        ("requests", report.Load.total);
        ("errors", report.Load.errors);
        ("throughput_rps", int_of_float report.Load.throughput_rps);
        ("p50_us", int_of_float report.Load.p50_us);
        ("p99_us", int_of_float report.Load.p99_us);
      ]
    ();
  Printf.printf
    "echo: %d conns x %d in-flight x %d iters = %d requests (%d errors)\n\
     throughput %.0f req/s, latency p50 %.0f us, p99 %.0f us\n\
     %!"
    conns inflight iters report.Load.total report.Load.errors report.Load.throughput_rps
    report.Load.p50_us report.Load.p99_us

let map_reduce profile =
  R.section
    "NET2 | net_map_reduce over loopback: pipelined fibers vs thread-per-task blocking";
  let n = R.pick profile ~full:192 ~smoke:48 in
  let delta = R.pick profile ~full:0.02 ~smoke:0.01 in
  let fib_n = R.pick profile ~full:18 ~smoke:10 in
  let conns = 2 in
  let workers_list = R.pick profile ~full:[ 2; 4 ] ~smoke:[ 2 ] in
  let expect_sum = Nmr.expected ~n ~fib_n in
  Printf.printf "n=%d inputs, delta=%.0fms per fetch, %d connections, fib(%d) per item:\n" n
    (delta *. 1000.) conns fib_n;
  Printf.printf "%8s %16s %16s %10s\n" "workers" "LHWS (s)" "threads (s)" "speedup";
  (* Best-of-N walls: the latency-hiding side is tens of milliseconds at
     smoke sizes, so a single stray descheduling would distort the
     guarded speedup. *)
  let best_of k f =
    let best = ref infinity in
    for _ = 1 to k do
      best := Float.min !best (f ())
    done;
    !best
  in
  Nmr.with_data_server ~delta (fun addr ->
      List.iter
        (fun workers ->
          let t_lh =
            best_of 3 (fun () ->
                with_lhws_rt ~workers (fun p rt ->
                    let module Pool = P.Lhws_instance in
                    let t0 = Unix.gettimeofday () in
                    let sum =
                      Pool.run p (fun () ->
                          Nmr.run (module Pool) p rt ~addr ~n ~conns ~fib_n ())
                    in
                    let dt = Unix.gettimeofday () -. t0 in
                    R.expect (sum = expect_sum);
                    dt))
          in
          let t_th =
            best_of 2 (fun () ->
                let module Pool = P.Threaded_instance in
                let p = Pool.create ~workers () in
                Fun.protect
                  ~finally:(fun () -> Pool.shutdown p)
                  (fun () ->
                    let rt = Reactor.blocking () in
                    let t0 = Unix.gettimeofday () in
                    let sum =
                      Pool.run p (fun () ->
                          Nmr.run (module Pool) p rt ~addr ~n ~conns ~fib_n ())
                    in
                    let dt = Unix.gettimeofday () -. t0 in
                    R.expect (sum = expect_sum);
                    dt))
          in
          let speedup = t_th /. t_lh in
          (* The headline claim: with the same two connections and a real
             δ, hiding the fetch latency must win. *)
          R.expect (speedup > 1.);
          Bench_json.record ~scenario:(Printf.sprintf "net_map_reduce_w%d" workers)
            ~pool:"lhws" ~workers ~wall_s:t_lh ~speedup ();
          Bench_json.record ~scenario:(Printf.sprintf "net_map_reduce_w%d" workers)
            ~pool:"threads" ~workers ~wall_s:t_th ();
          Printf.printf "%8d %16.3f %16.3f %9.1fx\n%!" workers t_lh t_th speedup)
        workers_list)

(* The batched reactor's headline measurement: the same closed-loop echo
   load as NET1 run once on the submission/completion reactor and once on
   the legacy wait-then-retry reactor ([Reactor.fibers ~legacy:true]),
   comparing kernel I/O calls per request.  The reduction comes from
   three places working together: eager completion keeps non-blocking
   ops out of the reactor, the pump paces its readiness passes instead of
   selecting on every worker idle loop, and Rpc's combining outbox
   coalesces pipelined frames into single gathering writes.  The ratio is
   recorded as a wall-free [speedup] sample so bench_guard holds it to
   the strict 1.25 threshold, and the batched leg's p99 feeds the
   net_echo* tail-latency guard. *)
let echo_batched profile =
  R.section
    "NET3 | batched submission/completion reactor vs legacy wait-then-retry: syscalls/op \
     and tail latency";
  let workers = 2 in
  let conns = R.pick profile ~full:8 ~smoke:2 in
  let inflight = R.pick profile ~full:8 ~smoke:4 in
  let iters = R.pick profile ~full:200 ~smoke:25 in
  let run_leg ~legacy =
    with_lhws_rt ~workers ~legacy (fun p rt ->
        let module Pool = P.Lhws_instance in
        Pool.run p (fun () ->
            let l =
              Rpc.serve
                (module Pool)
                p rt
                (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                ~handler:Fun.id
            in
            let r = Load.run (module Pool) p rt ~conns ~inflight ~iters (Listener.addr l) in
            Listener.shutdown ~grace:5. l;
            R.expect (r.Load.errors = 0);
            (r, Reactor.io_syscalls rt)))
  in
  (* Best of 2 by syscalls/op: the count is dominated by deterministic
     per-request traffic, but scheduling noise moves how many readiness
     passes a run needs. *)
  let best_leg ~legacy =
    let r1, s1 = run_leg ~legacy in
    let r2, s2 = run_leg ~legacy in
    let spo (r, s) = float_of_int s /. float_of_int (max 1 r.Load.total) in
    if spo (r1, s1) <= spo (r2, s2) then (r1, spo (r1, s1)) else (r2, spo (r2, s2))
  in
  let r_batched, spo_batched = best_leg ~legacy:false in
  let r_legacy, spo_legacy = best_leg ~legacy:true in
  let ratio = spo_legacy /. spo_batched in
  (* The acceptance bar: batching must shed at least 30% of the kernel
     I/O calls the legacy reactor spends per request. *)
  R.expect (spo_batched <= 0.70 *. spo_legacy);
  Bench_json.record ~scenario:"net_echo_batched" ~pool:"lhws" ~workers ~speedup:ratio
    ~counters:
      [
        ("batched_syscalls_per_op_x100", int_of_float (spo_batched *. 100.));
        ("legacy_syscalls_per_op_x100", int_of_float (spo_legacy *. 100.));
        ("p50_us", int_of_float r_batched.Load.p50_us);
        ("p99_us", int_of_float r_batched.Load.p99_us);
        ("legacy_p99_us", int_of_float r_legacy.Load.p99_us);
      ]
    ();
  Printf.printf
    "echo (%d conns x %d in-flight x %d iters):\n\
    \  batched: %.1f syscalls/op, p50 %.0f us, p99 %.0f us\n\
    \  legacy:  %.1f syscalls/op, p50 %.0f us, p99 %.0f us\n\
    \  syscalls/op reduced %.1fx\n\
     %!"
    conns inflight iters spo_batched r_batched.Load.p50_us r_batched.Load.p99_us spo_legacy
    r_legacy.Load.p50_us r_legacy.Load.p99_us ratio

let echo_faults profile =
  R.section
    "NET4 | resilient RPC echo: retry/breaker wrapper overhead at zero faults, correctness \
     under a seeded storm";
  let workers = 2 in
  let conns = R.pick profile ~full:8 ~smoke:2 in
  let iters = R.pick profile ~full:150 ~smoke:25 in
  let policy () =
    Rs.Retry.policy ~max_attempts:8 ~base_backoff:0.0005 ~max_backoff:0.005 ~seed:42 ()
  in
  (* One echo leg: [conns] clients, [iters] pipelined calls each, every
     response checksummed.  Returns the wall and the match count. *)
  let run_leg ?fault ~resilient () =
    with_lhws_rt ~workers ?fault (fun p rt ->
        let module Pool = P.Lhws_instance in
        Pool.run p (fun () ->
            let l =
              Rpc.serve
                (module Pool)
                p rt
                (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                ~handler:Fun.id
            in
            let addr = Listener.addr l in
            let call =
              if resilient then begin
                let cls =
                  Array.init conns (fun _ ->
                      Rs.Client.create (module Pool) p rt ~policy:(policy ()) addr)
                in
                fun ci b -> Rs.Client.call cls.(ci) b
              end
              else begin
                let cls =
                  Array.init conns (fun _ -> Rpc.Client.connect (module Pool) p rt addr)
                in
                fun ci b -> Pool.await p (Rpc.Client.call cls.(ci) b)
              end
            in
            let t0 = Unix.gettimeofday () in
            let tasks =
              Array.init conns (fun ci ->
                  Pool.async p (fun () ->
                      let ok = ref 0 in
                      for k = 0 to iters - 1 do
                        let b = Bytes.create 8 in
                        Bytes.set_int64_be b 0 (Int64.of_int ((ci * 1_000_003) + k));
                        if Bytes.equal (call ci b) b then incr ok
                      done;
                      !ok))
            in
            let ok = Array.fold_left (fun acc t -> acc + Pool.await p t) 0 tasks in
            let wall = Unix.gettimeofday () -. t0 in
            Listener.shutdown ~grace:5. l;
            (wall, ok)))
  in
  let best_of k f =
    let best = ref infinity in
    for _ = 1 to k do
      let wall, ok = f () in
      R.expect (ok = conns * iters);
      best := Float.min !best wall
    done;
    !best
  in
  let t_plain = best_of 3 (run_leg ~resilient:false) in
  let t_res = best_of 3 (run_leg ~resilient:true) in
  (* The survival leg: a seeded storm of injected errors, short ops and
     spurious EAGAINs.  Delays and blackouts are left out so the wall
     stays comparable; correctness, not speed, is the claim here. *)
  let storm_cfg =
    { Fault.disabled with Fault.seed = 42; p_error = 0.02; p_short = 0.02; p_eagain = 0.02 }
  in
  let storm = Fault.create storm_cfg in
  let t_storm, ok_storm = run_leg ~fault:storm ~resilient:true () in
  R.expect (ok_storm = conns * iters);
  let injected = Fault.total (Fault.injected storm) in
  R.expect (injected > 0);
  let overhead = t_plain /. t_res in
  Bench_json.record ~scenario:"net_echo_faults" ~pool:"plain" ~workers ~wall_s:t_plain ();
  Bench_json.record ~scenario:"net_echo_faults" ~pool:"resilient" ~workers ~wall_s:t_res
    ~speedup:overhead ();
  Bench_json.record ~scenario:"net_echo_faults" ~pool:"resilient-storm" ~workers
    ~wall_s:t_storm
    ~counters:[ ("requests", conns * iters); ("injected", injected) ]
    ();
  Printf.printf
    "echo (%d conns x %d iters): plain %.3fs, resilient %.3fs (plain/resilient %.2fx)\n\
     storm: %.3fs, %d faults injected, every response checksummed\n\
     %!"
    conns iters t_plain t_res overhead t_storm injected

let register () =
  R.register ~name:"net_echo" ~skip_in_quick:true echo;
  R.register ~name:"net_map_reduce" ~skip_in_quick:true map_reduce;
  R.register ~name:"net_echo_batched" ~skip_in_quick:true echo_batched;
  R.register ~name:"net_echo_faults" ~skip_in_quick:true echo_faults
