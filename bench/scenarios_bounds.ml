(* The quantitative claims: Theorems 1-2, Lemmas 1/7/8, Corollary 1 and
   the U = 1 server reduction, tabulated on simulator runs. *)

module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
open Lhws_core
module Bounds = Lhws_analysis.Bounds
module Invariants = Lhws_analysis.Invariants
module R = Registry

let theorem1 profile =
  R.section "T1 | Theorem 1: greedy schedule length <= W/P + S";
  let ps = R.pick profile ~full:[ 1; 4; 16 ] ~smoke:[ 1; 4 ] in
  let workloads =
    R.pick profile
      ~full:
        [
          ("map_reduce(500,20,100)", lazy (Generate.map_reduce ~n:500 ~leaf_work:20 ~latency:100));
          ("server(100,25,60)", lazy (Generate.server ~n:100 ~f_work:25 ~latency:60));
          ("fib(18)", lazy (Generate.fib ~n:18 ()));
          ("pipeline(6,64,40)", lazy (Generate.pipeline ~stages:6 ~items:64 ~latency:40));
          ( "random(seed=5)",
            lazy
              (Generate.random_fork_join ~seed:5 ~size_hint:4000 ~latency_prob:0.2
                 ~max_latency:80) );
          ( "jitter_mapreduce(300)",
            lazy
              (Generate.map_reduce_jitter ~seed:7 ~n:300 ~leaf_work:10 ~min_latency:20
                 ~max_latency:200) );
          ( "sort(64 chunks)",
            lazy (Lhws_workloads.Sort.dag ~n_chunks:64 ~chunk_work:8 ~latency:50) );
        ]
      ~smoke:
        [
          ("map_reduce(30,5,20)", lazy (Generate.map_reduce ~n:30 ~leaf_work:5 ~latency:20));
          ("fib(10)", lazy (Generate.fib ~n:10 ()));
        ]
  in
  Printf.printf "%-32s %4s %8s %8s %8s %6s\n" "workload" "P" "rounds" "bound" "ratio" "ok";
  List.iter
    (fun (name, dag) ->
      let dag = Lazy.force dag in
      List.iter
        (fun p ->
          let r = Greedy.run dag ~p in
          let b = Greedy.bound dag ~p in
          R.expect (r.Run.rounds <= b);
          Printf.printf "%-32s %4d %8d %8d %8.3f %6b\n" name p r.Run.rounds b
            (float_of_int r.Run.rounds /. float_of_int b)
            (r.Run.rounds <= b))
        ps)
    workloads;
  Printf.printf "%!"

let theorem2 profile =
  R.section "T2 | Theorem 2: LHWS rounds vs W/P + S*U*(1+lg U)  (U swept via n)";
  let ps = R.pick profile ~full:[ 1; 4; 16 ] ~smoke:[ 1; 4 ] in
  let cases =
    R.pick profile
      ~full:[ (1, 50); (8, 50); (64, 50); (512, 50); (512, 500) ]
      ~smoke:[ (1, 10); (8, 10) ]
  in
  Printf.printf "%8s %4s %5s %10s %12s %8s | %6s %6s | %10s %12s\n" "n=U" "P" "delta" "rounds"
    "bound" "ratio" "maxdq" "<=U+1" "steals" "steal-ratio";
  List.iter
    (fun (n, delta) ->
      List.iter
        (fun p ->
          let dag = Generate.map_reduce ~n ~leaf_work:10 ~latency:delta in
          let run = Lhws_sim.run dag ~p in
          let i = Bounds.instance ~suspension_width:n dag ~p run in
          let steal_bound =
            float_of_int p *. float_of_int i.Bounds.span *. float_of_int (max 1 n)
            *. (1. +. Bounds.lg n)
          in
          R.expect (Bounds.lemma7_ok i);
          R.expect (Bounds.width_ok i);
          Printf.printf "%8d %4d %5d %10d %12.0f %8.3f | %6d %6b | %10d %12.3f\n" n p delta
            run.Run.rounds (Bounds.lhws_bound i) (Bounds.lhws_ratio i)
            run.Run.stats.Stats.max_deques_per_worker (Bounds.lemma7_ok i)
            run.Run.stats.Stats.steal_attempts
            (float_of_int run.Run.stats.Stats.steal_attempts /. steal_bound))
        ps)
    cases;
  Printf.printf
    "(steal-ratio: measured steal attempts / (P*S*U*(1+lgU)) — bounded per Theorem 2)\n%!"

let lemma1 profile =
  R.section "L1 | Lemma 1: rounds <= (4W + R)/P and token balance";
  let ps = R.pick profile ~full:[ 1; 4; 16 ] ~smoke:[ 1; 4 ] in
  let workloads =
    R.pick profile
      ~full:
        [
          ("map_reduce(300,10,80)", lazy (Generate.map_reduce ~n:300 ~leaf_work:10 ~latency:80));
          ("server(80,15,40)", lazy (Generate.server ~n:80 ~f_work:15 ~latency:40));
          ("fib(17)", lazy (Generate.fib ~n:17 ()));
        ]
      ~smoke:
        [
          ("map_reduce(30,5,20)", lazy (Generate.map_reduce ~n:30 ~leaf_work:5 ~latency:20));
          ("fib(10)", lazy (Generate.fib ~n:10 ()));
        ]
  in
  Printf.printf "%-28s %4s %8s %12s %6s %6s\n" "workload" "P" "rounds" "(4W+R)/P" "ok" "bal";
  List.iter
    (fun (name, dag) ->
      let dag = Lazy.force dag in
      List.iter
        (fun p ->
          let run = Lhws_sim.run dag ~p in
          let w = Metrics.work dag in
          let r = run.Run.stats.Stats.steal_attempts in
          let bound = ((4 * w) + r) / p in
          R.expect (run.Run.rounds <= bound + 1);
          R.expect (Stats.balanced run.Run.stats);
          Printf.printf "%-28s %4d %8d %12d %6b %6b\n" name p run.Run.rounds bound
            (run.Run.rounds <= bound + 1)
            (Stats.balanced run.Run.stats))
        ps)
    workloads;
  Printf.printf "%!"

let corollary1 profile =
  R.section "C1 | Corollary 1: S* <= 2S(1+lg U), and Lemma 2: d(v) <= (2+lgU) d_G(v)";
  let ps = R.pick profile ~full:[ 1; 4; 16 ] ~smoke:[ 1; 4 ] in
  let workloads =
    R.pick profile
      ~full:
        [
          ( "map_reduce(200,8,60)",
            lazy (Generate.map_reduce ~n:200 ~leaf_work:8 ~latency:60),
            200 );
          ("server(60,10,30)", lazy (Generate.server ~n:60 ~f_work:10 ~latency:30), 1);
          ("pipeline(5,40,25)", lazy (Generate.pipeline ~stages:5 ~items:40 ~latency:25), 40);
          ("fib(15)", lazy (Generate.fib ~n:15 ()), 0);
        ]
      ~smoke:
        [
          ("map_reduce(20,4,15)", lazy (Generate.map_reduce ~n:20 ~leaf_work:4 ~latency:15), 20);
          ("fib(9)", lazy (Generate.fib ~n:9 ()), 0);
        ]
  in
  Printf.printf "%-28s %4s %6s %6s %8s %10s %6s %6s\n" "workload" "P" "S" "S*" "S*/S"
    "max d/dG" "bnd" "viol";
  List.iter
    (fun (name, dag, u) ->
      let dag = Lazy.force dag in
      List.iter
        (fun p ->
          let run = Lhws_sim.run ~config:Config.analysis dag ~p in
          let tr = Run.trace_exn run in
          let dr = Invariants.depth_report ~suspension_width:u dag tr in
          R.expect (dr.Invariants.violations = 0);
          Printf.printf "%-28s %4d %6d %6d %8.3f %10.3f %6.2f %6d\n" name p dr.Invariants.span
            dr.Invariants.enabling_span
            (float_of_int dr.Invariants.enabling_span
            /. float_of_int (max 1 dr.Invariants.span))
            dr.Invariants.max_ratio dr.Invariants.bound dr.Invariants.violations)
        ps)
    workloads;
  Printf.printf "%!"

let lemma8 profile =
  R.section "L8 | Lemma 8: phases of P(U+1) steal attempts drop the potential (w.p. > 1/4)";
  let ps = R.pick profile ~full:[ 2; 4 ] ~smoke:[ 2 ] in
  let workloads =
    R.pick profile
      ~full:
        [
          ("map_reduce(16,3,25)", lazy (Generate.map_reduce ~n:16 ~leaf_work:3 ~latency:25), 16);
          ("server(12,4,10)", lazy (Generate.server ~n:12 ~f_work:4 ~latency:10), 1);
          ("fib(11)", lazy (Generate.fib ~n:11 ()), 1);
        ]
      ~smoke:
        [ ("map_reduce(8,2,10)", lazy (Generate.map_reduce ~n:8 ~leaf_work:2 ~latency:10), 8) ]
  in
  Printf.printf "%-24s %4s %4s | %8s %10s %10s\n" "workload" "P" "U" "phases" "successful"
    "fraction";
  List.iter
    (fun (name, dag, u) ->
      let dag = Lazy.force dag in
      List.iter
        (fun p ->
          let snaps = ref [] in
          let run =
            Lhws_sim.run
              ~config:{ Config.analysis with fast_forward = false }
              ~observer:(fun s -> snaps := s :: !snaps)
              dag ~p
          in
          let s_star = Trace.enabling_span (Run.trace_exn run) in
          let r = Lhws_analysis.Potential.phase_report ~s_star ~p ~u (List.rev !snaps) in
          Printf.printf "%-24s %4d %4d | %8d %10d %10.2f\n" name p u
            r.Lhws_analysis.Potential.phases r.Lhws_analysis.Potential.successful
            r.Lhws_analysis.Potential.fraction)
        ps)
    workloads;
  Printf.printf "(the lemma guarantees fraction > 0.25 in expectation)\n%!"

let server_u1 profile =
  R.section "U1 | Server (Figure 10): U=1 keeps one deque per worker; WS-like bound";
  let n = R.pick profile ~full:200 ~smoke:20 in
  let f_work = R.pick profile ~full:30 ~smoke:5 in
  let latency = R.pick profile ~full:80 ~smoke:10 in
  let ps = R.pick profile ~full:[ 1; 2; 4; 8; 16 ] ~smoke:[ 1; 2 ] in
  Printf.printf "%4s %10s %10s %10s %8s %10s\n" "P" "LHWS" "WS" "greedy" "maxdq" "W/P+S";
  let dag = Generate.server ~n ~f_work ~latency in
  List.iter
    (fun p ->
      let lh = Lhws_sim.run dag ~p in
      let ws = Ws_sim.run dag ~p in
      let gr = Greedy.run dag ~p in
      Printf.printf "%4d %10d %10d %10d %8d %10d\n" p lh.Run.rounds ws.Run.rounds gr.Run.rounds
        lh.Run.stats.Stats.max_deques_per_worker (Greedy.bound dag ~p))
    ps;
  Printf.printf "%!"

let register () =
  R.register ~name:"theorem1" theorem1;
  R.register ~name:"theorem2" theorem2;
  R.register ~name:"lemma1" lemma1;
  R.register ~name:"corollary1" corollary1;
  R.register ~name:"lemma8" lemma8;
  R.register ~name:"server_u1" server_u1
