(* bechamel micro-benchmarks of the data structures and scheduler kernels
   backing the tables.  Meaningless at smoke sizes, so the scenario is
   skipped in both the quick and smoke profiles. *)

module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
module Suspension = Lhws_dag.Suspension
open Lhws_core
module R = Registry

let bechamel_section _profile =
  R.section "MICRO | bechamel micro-benchmarks (ns per run, OLS on monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let mr_dag = Generate.map_reduce ~n:64 ~leaf_work:5 ~latency:50 in
  let fib_dag = Generate.fib ~n:13 () in
  let tests =
    [
      Test.make ~name:"deque push+pop x1000"
        (Staged.stage (fun () ->
             let d = Lhws_deque.Deque.create () in
             for i = 1 to 1000 do
               Lhws_deque.Deque.push_bottom d i
             done;
             for _ = 1 to 1000 do
               ignore (Lhws_deque.Deque.pop_bottom d)
             done));
      Test.make ~name:"chase-lev push+pop x1000"
        (Staged.stage (fun () ->
             let d = Lhws_deque.Chase_lev.create () in
             for i = 1 to 1000 do
               Lhws_deque.Chase_lev.push_bottom d i
             done;
             for _ = 1 to 1000 do
               ignore (Lhws_deque.Chase_lev.pop_bottom d)
             done));
      Test.make ~name:"lhws_sim fib(13) P=4"
        (Staged.stage (fun () -> ignore (Lhws_sim.run fib_dag ~p:4)));
      Test.make ~name:"lhws_sim map-reduce(64) P=4"
        (Staged.stage (fun () -> ignore (Lhws_sim.run mr_dag ~p:4)));
      Test.make ~name:"ws_sim map-reduce(64) P=4"
        (Staged.stage (fun () -> ignore (Ws_sim.run mr_dag ~p:4)));
      Test.make ~name:"greedy map-reduce(64) P=4"
        (Staged.stage (fun () -> ignore (Greedy.run mr_dag ~p:4)));
      Test.make ~name:"metrics span + U lower bound"
        (Staged.stage (fun () ->
             ignore (Metrics.span mr_dag);
             ignore (Suspension.lower_bound_greedy mr_dag)));
    ]
  in
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-40s %14.0f ns/run\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    tests;
  Printf.printf "%!"

let register () =
  R.register ~name:"micro" ~skip_in_quick:true ~skip_in_smoke:true bechamel_section
