(* The real effects-based pools: wall-clock comparisons across every
   POOL instance (latency-hiding, blocking baseline, thread-per-task),
   the fibers-vs-threads ablation, and the sim-predicts-runtime check. *)

module W = Lhws_workloads
module P = W.Pool_intf
module R = Registry

let stat_counters (stats : Lhws_runtime.Scheduler_core.stats) =
  [
    ("steals", stats.steals);
    ("failed_steals", stats.failed_steals);
    ("steals_batched", stats.steals_batched);
    ("tasks_stolen", stats.tasks_stolen);
    ("deques_allocated", stats.deques_allocated);
    ("suspensions", stats.suspensions);
    ("resumes", stats.resumes);
    ("max_deques_per_worker", stats.max_deques_per_worker);
    ("io_pending", stats.io_pending);
    ("io_syscalls", stats.io_syscalls);
  ]

let runtime profile =
  R.section "RT | Real pools: latency-hiding vs blocking vs threads (wall-clock, 2 domains)";
  let workers = 2 in
  let n = R.pick profile ~full:60 ~smoke:8 in
  let fib_n = R.pick profile ~full:18 ~smoke:10 in
  let deltas = R.pick profile ~full:[ 0.05; 0.005; 0.0005 ] ~smoke:[ 0.002 ] in
  let run_mr (pool : P.pool) ~delta =
    let module Pool = (val pool : P.POOL) in
    let p = Pool.create ~workers () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () ->
        let r = W.Map_reduce.run_on (module Pool) p ~n ~latency:delta ~fib_n in
        Bench_json.record
          ~scenario:(Printf.sprintf "rt_map_reduce_delta%gms" (delta *. 1000.))
          ~pool:Pool.name ~workers ~wall_s:r.W.Map_reduce.elapsed
          ~counters:(stat_counters (Pool.stats p))
          ();
        r)
  in
  Printf.printf "map-reduce n=%d, fib(%d) per item:\n" n fib_n;
  Printf.printf "%10s %12s %12s %12s %8s\n" "delta" "LHWS (s)" "WS (s)" "threads (s)" "WS/LHWS";
  List.iter
    (fun delta ->
      let lh = run_mr P.lhws ~delta in
      let ws = run_mr P.ws ~delta in
      let th = run_mr P.threads ~delta in
      assert (lh.W.Map_reduce.value = ws.W.Map_reduce.value);
      assert (lh.W.Map_reduce.value = th.W.Map_reduce.value);
      Printf.printf "%8.1fms %12.3f %12.3f %12.3f %8.2f\n" (delta *. 1000.)
        lh.W.Map_reduce.elapsed ws.W.Map_reduce.elapsed th.W.Map_reduce.elapsed
        (ws.W.Map_reduce.elapsed /. lh.W.Map_reduce.elapsed))
    deltas;
  let pages = R.pick profile ~full:120 ~smoke:16 in
  let latency = R.pick profile ~full:0.01 ~smoke:0.002 in
  let parse_work = R.pick profile ~full:14 ~smoke:8 in
  let web = W.Crawler.make_web ~seed:42 ~pages ~max_links:4 in
  let crawl (pool : P.pool) =
    let module Pool = (val pool : P.POOL) in
    let p = Pool.create ~workers () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () ->
        let r = W.Crawler.crawl_on (module Pool) p web ~latency ~parse_work in
        Bench_json.record ~scenario:"rt_crawler" ~pool:Pool.name ~workers
          ~wall_s:r.W.Crawler.elapsed
          ~counters:(stat_counters (Pool.stats p))
          ();
        r)
  in
  let lh = crawl P.lhws and ws = crawl P.ws in
  Printf.printf "crawler (%d pages, %.0fms fetch): LHWS %.3fs vs WS %.3fs (%.1fx)\n%!" pages
    (latency *. 1000.) lh.W.Crawler.elapsed ws.W.Crawler.elapsed
    (ws.W.Crawler.elapsed /. lh.W.Crawler.elapsed)

let ablation_threads profile =
  R.section
    "AB4 | Fibers vs OS threads (Section 7): latency hidden either way, overhead differs";
  let fib_n = R.pick profile ~full:12 ~smoke:8 in
  let cases =
    R.pick profile ~full:[ (200, 0.); (200, 0.002); (1000, 0.) ] ~smoke:[ (50, 0.) ]
  in
  let fiber_mr ~n ~delta ~fib_n =
    let module Pool = (val P.lhws : P.POOL) in
    let p = Pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () ->
        (W.Map_reduce.run_on (module Pool) p ~n ~latency:delta ~fib_n).W.Map_reduce.elapsed)
  in
  let thread_mr ~n ~delta ~fib_n =
    Lhws_runtime.Threaded_pool.with_pool ~max_threads:1024 (fun p ->
        let t0 = Unix.gettimeofday () in
        let v =
          Lhws_runtime.Threaded_pool.parallel_map_reduce p ~grain:1 ~lo:0 ~hi:n
            ~map:(fun _ ->
              Lhws_runtime.Threaded_pool.sleep p delta;
              W.Fib.seq fib_n mod W.Map_reduce.modulus)
            ~combine:(fun a b -> (a + b) mod W.Map_reduce.modulus)
            ~id:0
        in
        ignore v;
        let dt = Unix.gettimeofday () -. t0 in
        (dt, Lhws_runtime.Threaded_pool.threads_spawned p))
  in
  Printf.printf "map-reduce, fib(%d) per item (thread-per-item vs fiber-per-item):\n" fib_n;
  Printf.printf "%6s %8s | %12s | %12s %10s\n" "n" "delta" "fibers (s)" "threads (s)" "spawned";
  List.iter
    (fun (n, delta) ->
      let tf = fiber_mr ~n ~delta ~fib_n in
      let tt, spawned = thread_mr ~n ~delta ~fib_n in
      Bench_json.record
        ~scenario:(Printf.sprintf "ab4_n%d_delta%gms" n (delta *. 1000.))
        ~pool:"lhws" ~workers:2 ~wall_s:tf ();
      Bench_json.record
        ~scenario:(Printf.sprintf "ab4_n%d_delta%gms" n (delta *. 1000.))
        ~pool:"threads" ~workers:2 ~wall_s:tt
        ~counters:[ ("threads_spawned", spawned) ]
        ();
      Printf.printf "%6d %6.0fms | %12.4f | %12.4f %10d\n" n (delta *. 1000.) tf tt spawned)
    cases;
  Printf.printf
    "(both hide latency; the thread pool pays creation + kernel scheduling per task)\n%!"

let prediction profile =
  R.section
    "PRED | Cross-layer validation: simulator rounds predict runtime wall-clock (P = 1, one \
     core)";
  (* One work unit = a spin of ~10us; one latency unit = the same 10us via
     the timer.  The simulator charges one round per unit of either, so at
     P = 1 its round count times the unit duration should predict the real
     pool's elapsed time. *)
  let spin () =
    let acc = ref 0 in
    for i = 1 to 20_000 do
      acc := (!acc * 31) + i
    done;
    Sys.opaque_identity !acc |> ignore
  in
  let t0 = Unix.gettimeofday () in
  let calib_n = R.pick profile ~full:2_000 ~smoke:200 in
  for _ = 1 to calib_n do
    spin ()
  done;
  let unit_s = (Unix.gettimeofday () -. t0) /. float_of_int calib_n in
  Printf.printf "calibrated work unit: %.1f us\n" (unit_s *. 1e6);
  let programs =
    R.pick profile
      ~full:
        [
          ( "map_reduce(40,100,5)",
            lazy
              (W.Program.dist_map_reduce ~n:40 ~latency:100 ~leaf_work:5 ~f:Fun.id ~g:( + )
                 ~id:0) );
          ( "server(20,50,10)",
            lazy (W.Program.server ~n:20 ~latency:50 ~f_work:10 ~f:Fun.id ~g:( + ) ~id:0) );
          ( "map_reduce(100,20,10)",
            lazy
              (W.Program.dist_map_reduce ~n:100 ~latency:20 ~leaf_work:10 ~f:Fun.id ~g:( + )
                 ~id:0) );
        ]
      ~smoke:
        [
          ( "map_reduce(10,20,3)",
            lazy
              (W.Program.dist_map_reduce ~n:10 ~latency:20 ~leaf_work:3 ~f:Fun.id ~g:( + )
                 ~id:0) );
        ]
  in
  Printf.printf "%-28s %10s %12s %12s %8s\n" "program" "sim rounds" "predicted(s)"
    "measured(s)" "ratio";
  List.iter
    (fun (name, prog) ->
      let prog = Lazy.force prog in
      let rounds = (W.Program.simulate prog ~p:1).Lhws_core.Run.rounds in
      let predicted = float_of_int rounds *. unit_s in
      let module Pool = (val P.lhws : P.POOL) in
      let pool = Pool.create ~workers:1 () in
      let measured =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            ignore (W.Program.run_on (module Pool) pool ~work_unit:spin ~tick:unit_s prog);
            Unix.gettimeofday () -. t0)
      in
      Printf.printf "%-28s %10d %12.3f %12.3f %8.2f\n" name rounds predicted measured
        (measured /. predicted))
    programs;
  Printf.printf
    "(ratio ~ 1: the discrete model is a faithful predictor of the real scheduler)\n%!"

let register () =
  R.register ~name:"runtime" ~skip_in_quick:true runtime;
  R.register ~name:"ablation_threads" ~skip_in_quick:true ablation_threads;
  R.register ~name:"prediction" ~skip_in_quick:true prediction
