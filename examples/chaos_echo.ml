(* Chaos echo: the serving stack under a seeded fault storm, survived
   by the resilience layer.

   A fault plane on the reactor injects resets, spurious EAGAINs, short
   reads/writes, delays, accept failures and fd blackouts into every
   kernel operation of the echo server and its clients — all drawn from
   a replayable RNG schedule, so this run's storm is a pure function of
   the seed.  Each client call goes through a retry policy (exponential
   backoff with decorrelated jitter) that redials dropped connections;
   the program checks every response round-trips bit-exact anyway.

   Run with: dune exec examples/chaos_echo.exe *)

open Lhws_runtime
module W = Lhws_workloads
module P = W.Pool_intf
module Reactor = Lhws_net.Reactor
module Listener = Lhws_net.Listener
module Rpc = Lhws_net.Rpc
module Fault = Lhws_net.Fault
module Rs = Lhws_net.Resilience

let seed = 42
let n_conns = 32
let calls = 4

let () =
  let fault = Fault.create (Fault.storm ~seed ~rate:0.02 ()) in
  let ok =
    Lhws_pool.with_pool ~workers:2 (fun p ->
        let rt =
          Reactor.fibers
            ~register:(fun ~pending ~syscalls poll ->
            Lhws_pool.register_poller p ?pending ?syscalls poll)
            ~fault ()
        in
        let module Pool = P.Lhws_instance in
        Pool.run p (fun () ->
            let l =
              Rpc.serve
                (module Pool)
                p rt
                (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                ~handler:Fun.id
            in
            let addr = Listener.addr l in
            let policy =
              Rs.Retry.policy ~max_attempts:10 ~base_backoff:0.001 ~max_backoff:0.01
                ~seed ()
            in
            let clients =
              Array.init n_conns (fun _ ->
                  Rs.Client.create (module Pool) p rt ~policy addr)
            in
            let tasks =
              Array.mapi
                (fun ci cl ->
                  Pool.async p (fun () ->
                      let ok = ref 0 in
                      for k = 0 to calls - 1 do
                        let b = Bytes.create 8 in
                        Bytes.set_int64_be b 0 (Int64.of_int ((ci * 1_000_003) + k));
                        if Bytes.equal (Rs.Client.call cl b) b then incr ok
                      done;
                      !ok))
                clients
            in
            let ok = Array.fold_left (fun acc t -> acc + Pool.await p t) 0 tasks in
            let redials =
              Array.fold_left (fun acc cl -> acc + Rs.Client.reconnects cl) 0 clients
            in
            Array.iter Rs.Client.close clients;
            Listener.shutdown ~grace:5. l;
            (ok, redials)))
  in
  let ok, redials = ok in
  let inj = Fault.injected fault in
  Printf.printf
    "chaos echo: %d/%d responses checksummed through a seed-%d storm\n\
     injected: %d errors, %d eagains, %d shorts, %d delays, %d accept-fails, %d \
     blackouts; %d redials\n"
    ok (n_conns * calls) seed inj.Fault.errors inj.Fault.eagains inj.Fault.shorts
    inj.Fault.delays inj.Fault.accept_fails inj.Fault.blackouts redials;
  assert (ok = n_conns * calls)
