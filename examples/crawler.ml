(* A mock web crawler: irregular, data-driven parallelism where every page
   fetch incurs network latency.  Fetched pages are parsed (computation)
   and their links crawled in parallel.  With the latency-hiding pool,
   in-flight fetches overlap each other and the parsing; the blocking pool
   wastes a worker per in-flight fetch.

   Run with: dune exec examples/crawler.exe *)

module W = Lhws_workloads
module P = W.Pool_intf

let () =
  let web = W.Crawler.make_web ~seed:7 ~pages:150 ~max_links:4 in
  Format.printf "synthetic web: 150 pages, %d reachable from the root@." (W.Crawler.reachable web);
  let one (pool : P.pool) =
    let module Pool = (val pool : P.POOL) in
    let p = Pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> W.Crawler.crawl_on (module Pool) p web ~latency:0.01 ~parse_work:15)
  in
  let lh = one P.lhws in
  let ws = one P.ws in
  Format.printf "crawled %d pages (checksum %d)@." lh.W.Crawler.visited lh.W.Crawler.checksum;
  assert (lh.W.Crawler.visited = ws.W.Crawler.visited);
  assert (lh.W.Crawler.checksum = ws.W.Crawler.checksum);
  Format.printf "  latency-hiding crawl: %.3f s@." lh.W.Crawler.elapsed;
  Format.printf "  blocking crawl:       %.3f s  (%.1fx slower)@." ws.W.Crawler.elapsed
    (ws.W.Crawler.elapsed /. lh.W.Crawler.elapsed)
