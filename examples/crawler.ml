(* A web crawler over real sockets: irregular, data-driven parallelism
   where every page fetch is a round trip to a page server (a separate
   domain running the threaded-blocking pool, with 10 ms of induced
   latency per fetch — the network).  Fetched pages are parsed
   (computation) and their links crawled in parallel.

   With the latency-hiding pool the fetches are pipelined RPC calls:
   every in-flight fetch is a suspended fiber, so 2 workers keep all of
   them outstanding at once while parsing the pages that have arrived.
   The blocking pool does one synchronous round trip per worker at a
   time, so the 10 ms latencies serialise.

   Run with: dune exec examples/crawler.exe *)

open Lhws_runtime
module W = Lhws_workloads
module P = W.Pool_intf
module Reactor = Lhws_net.Reactor
module Conn = Lhws_net.Conn
module Listener = Lhws_net.Listener
module Rpc = Lhws_net.Rpc

let pages = 150
let fetch_latency = 0.01
let parse_work = 15
let client_conns = 2

let encode_id i =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int i);
  b

let encode_links links =
  let b = Bytes.create (8 * List.length links) in
  List.iteri (fun k l -> Bytes.set_int64_be b (8 * k) (Int64.of_int l)) links;
  b

let decode_links b =
  List.init (Bytes.length b / 8) (fun k -> Int64.to_int (Bytes.get_int64_be b (8 * k)))

(* The page server: thread-per-request blocking pool in its own domain,
   sleeping [fetch_latency] before answering each fetch — the same shape
   as a remote store that really does take a round trip. *)
type page_server = { stop : bool Atomic.t; domain : unit Domain.t; addr : Unix.sockaddr }

let start_page_server web =
  let stop = Atomic.make false in
  let addr_slot = Atomic.make None in
  let domain =
    Domain.spawn (fun () ->
        let module Pool = P.Threaded_instance in
        let pool = Pool.create () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            Pool.run pool (fun () ->
                let l =
                  Rpc.serve
                    (module Pool)
                    pool (Reactor.blocking ())
                    (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                    ~handler:(fun payload ->
                      let id = Int64.to_int (Bytes.get_int64_be payload 0) in
                      Unix.sleepf fetch_latency;
                      encode_links (W.Crawler.links web id))
                in
                Atomic.set addr_slot (Some (Listener.addr l));
                while not (Atomic.get stop) do
                  Unix.sleepf 0.002
                done;
                Listener.shutdown ~grace:1. l)))
  in
  let rec await_addr () =
    match Atomic.get addr_slot with
    | Some a -> a
    | None ->
        Unix.sleepf 0.001;
        await_addr ()
  in
  { stop; domain; addr = await_addr () }

let stop_page_server s =
  Atomic.set s.stop true;
  Domain.join s.domain

(* Parallel crawl from page 0, generic over the pool and the fetch
   strategy; called from within [Pool.run].  The frontier is a shared
   visited array claimed by CAS, so each page is fetched exactly once. *)
let crawl (type p) (module Pool : P.POOL with type t = p) (pool : p) ~fetch =
  let visited = Array.init pages (fun _ -> Atomic.make false) in
  let count = Atomic.make 0 in
  let checksum = Atomic.make 0 in
  let rec visit i =
    let links = fetch i in
    ignore (W.Fib.seq parse_work : int);
    Atomic.incr count;
    ignore (Atomic.fetch_and_add checksum ((i + 1) * 2654435761 land 0xFFFFFFF) : int);
    let kids =
      List.filter_map
        (fun j ->
          if Atomic.compare_and_set visited.(j) false true then
            Some (Pool.async pool (fun () -> visit j))
          else None)
        links
    in
    List.iter (fun t -> Pool.await pool t) kids
  in
  Atomic.set visited.(0) true;
  visit 0;
  (Atomic.get count, Atomic.get checksum)

let crawl_latency_hiding addr =
  let pool = Lhws_pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Lhws_pool.shutdown pool)
    (fun () ->
      let rt =
        Reactor.fibers
          ~register:(fun ~pending ~syscalls poll ->
            Lhws_pool.register_poller pool ?pending ?syscalls poll)
          ()
      in
      let module Pool = P.Lhws_instance in
      let t0 = Unix.gettimeofday () in
      let v, c =
        Pool.run pool (fun () ->
            (* connect inside run (each demux is a pool task), crawl with
               pipelined calls round-robin over the connections *)
            let clients =
              Array.init client_conns (fun _ -> Rpc.Client.connect (module Pool) pool rt addr)
            in
            Fun.protect
              ~finally:(fun () -> Array.iter Rpc.Client.close clients)
              (fun () ->
                let fetch i =
                  decode_links
                    (Pool.await pool
                       (Rpc.Client.call clients.(i mod client_conns) (encode_id i)))
                in
                crawl (module Pool) pool ~fetch))
      in
      (v, c, Unix.gettimeofday () -. t0))

let crawl_blocking addr =
  let module Pool = P.Ws_instance in
  let pool = Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let rt = Reactor.blocking () in
      let connect () =
        let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
        (try Unix.connect fd addr
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        Conn.create rt fd
      in
      let conns = Array.init client_conns (fun _ -> connect ()) in
      let mus = Array.init client_conns (fun _ -> Mutex.create ()) in
      Fun.protect
        ~finally:(fun () -> Array.iter Conn.close conns)
        (fun () ->
          let fetch i =
            let k = i mod client_conns in
            Mutex.lock mus.(k);
            Fun.protect
              ~finally:(fun () -> Mutex.unlock mus.(k))
              (fun () -> decode_links (Rpc.call_sync conns.(k) (encode_id i)))
          in
          let t0 = Unix.gettimeofday () in
          let v, c = Pool.run pool (fun () -> crawl (module Pool) pool ~fetch) in
          (v, c, Unix.gettimeofday () -. t0)))

let () =
  let web = W.Crawler.make_web ~seed:7 ~pages ~max_links:4 in
  Format.printf "synthetic web behind a socket: %d pages, %d reachable, %.0f ms per fetch@."
    pages (W.Crawler.reachable web) (fetch_latency *. 1000.);
  let server = start_page_server web in
  Fun.protect
    ~finally:(fun () -> stop_page_server server)
    (fun () ->
      let v1, c1, dt1 = crawl_latency_hiding server.addr in
      let v2, c2, dt2 = crawl_blocking server.addr in
      assert (v1 = W.Crawler.reachable web);
      assert (v1 = v2);
      assert (c1 = c2);
      Format.printf "crawled %d pages (checksum %d)@." v1 c1;
      Format.printf "  latency-hiding crawl (pipelined RPC): %.3f s@." dt1;
      Format.printf "  blocking crawl (one trip at a time):  %.3f s  (%.1fx slower)@." dt2
        (dt2 /. dt1))
