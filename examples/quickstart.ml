(* Quickstart: build a weighted dag by hand, measure it, simulate both
   schedulers on it, and run the same computation for real on the
   effects-based pools.

   Run with: dune exec examples/quickstart.exe *)

module Dag = Lhws_dag.Dag
module Block = Lhws_dag.Block
module Metrics = Lhws_dag.Metrics
module Suspension = Lhws_dag.Suspension
open Lhws_core

let () =
  (* The paper's Figure 1: one thread reads an integer from the user
     (latency delta), doubles it; a sibling thread computes 6 * 7; the
     results are added.  We pick delta = 20 rounds. *)
  let b = Dag.Builder.create () in
  let read_and_double =
    Block.seq b (Block.latency ~label:"x = input()" b 20) (Block.vertex ~label:"2 * x" b)
  in
  let multiply = Block.vertex ~label:"6 * 7" b in
  let dag = Block.finish b (Block.fork2 ~join_label:"x + y" b multiply read_and_double) in

  Format.printf "work W = %d, span S = %d, suspension width U = %d@." (Metrics.work dag)
    (Metrics.span dag) (Suspension.exact dag);

  (* Simulate on two workers: the latency-hiding scheduler suspends the
     reading thread instead of blocking its worker. *)
  let lhws = Lhws_sim.run dag ~p:2 in
  let ws = Ws_sim.run dag ~p:2 in
  Format.printf "simulated rounds on P=2:  latency-hiding %d,  blocking baseline %d@."
    lhws.Run.rounds ws.Run.rounds;

  (* The same program for real, through the pool-generic POOL interface:
     50 "user inputs" of 10 ms each, overlapped with computation.  Even
     one worker hides all the latency.  (Swap [P.lhws] for [P.ws] or
     [P.threads] to compare pools.) *)
  let n = 50 and latency = 0.01 in
  let module P = Lhws_workloads.Pool_intf in
  let module Pool = (val P.lhws : P.POOL) in
  let pool = Pool.create ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let total =
        Pool.run pool (fun () ->
            Pool.parallel_map_reduce pool ~lo:0 ~hi:n
              ~map:(fun i ->
                Pool.sleep pool latency (* input() *);
                (2 * i) + 42)
              ~combine:( + ) ~id:0)
      in
      Format.printf "runtime (%s pool): %d inputs of %.0f ms each -> total %d in %.3f s \
                     (sequential wait would be %.1f s)@."
        Pool.name n (latency *. 1000.) total
        (Unix.gettimeofday () -. t0)
        (float_of_int n *. latency))
