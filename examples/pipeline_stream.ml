(* A streaming pipeline built from channels: stage 1 "fetches" records
   (latency per record), stage 2 parses them (computation), stage 3
   aggregates.  Bounded channels provide backpressure; all stages are
   fibers multiplexed over two workers, with fetch latency hidden behind
   parsing.

   This is the "interacting parallel computations" shape from the paper's
   title that pure fork-join cannot express: stages run concurrently for
   the whole execution and communicate continuously.

   Run with: dune exec examples/pipeline_stream.exe *)

open Lhws_runtime
module W = Lhws_workloads

let records = 200
let fetch_latency = 0.002
let parse_fib = 14

(* Pool operations go through the POOL interface; the channels themselves
   need suspendable fibers, so only the latency-hiding instance can run
   this example. *)
module Pool = W.Pool_intf.Lhws_instance

let () =
  Lhws_pool.with_pool ~workers:2 (fun pool ->
      let t0 = Unix.gettimeofday () in
      let parsed_total, fetched, parsed =
        Pool.run pool (fun () ->
            let raw = Channel.create ~capacity:16 () in
            let cooked = Channel.create ~capacity:16 () in
            let fetcher =
              Pool.async pool (fun () ->
                  for i = 1 to records do
                    Pool.sleep pool fetch_latency (* remote fetch *);
                    Channel.send raw i
                  done;
                  Channel.close raw;
                  records)
            in
            let parser_count = 3 in
            let parsers =
              List.init parser_count (fun _ ->
                  Pool.async pool (fun () ->
                      let n = ref 0 in
                      (try
                         while true do
                           let record = Channel.recv raw in
                           let value = W.Fib.seq parse_fib + record in
                           Channel.send cooked value;
                           incr n
                         done
                       with Channel.Closed -> ());
                      !n))
            in
            let aggregator =
              Pool.async pool (fun () ->
                  let total = ref 0 and seen = ref 0 in
                  (try
                     while true do
                       total := !total + Channel.recv cooked;
                       incr seen
                     done
                   with Channel.Closed -> ());
                  (!total, !seen))
            in
            let fetched = Pool.await pool fetcher in
            let parsed = List.fold_left (fun a p -> a + Pool.await pool p) 0 parsers in
            Channel.close cooked;
            let total, seen = Pool.await pool aggregator in
            assert (seen = records);
            (total, fetched, parsed))
      in
      let dt = Unix.gettimeofday () -. t0 in
      let expect = (records * W.Fib.seq parse_fib) + (records * (records + 1) / 2) in
      assert (parsed_total = expect);
      Format.printf "pipeline: fetched %d records, parsed %d, aggregate %d@." fetched parsed
        parsed_total;
      Format.printf "elapsed %.3f s — fetch alone would take %.3f s; parsing is hidden inside \
                     it@."
        dt
        (float_of_int records *. fetch_latency))
