(* The paper's evaluation workload (Section 6.1): a distributed map-and-
   reduce where each of n values is fetched from a "remote server"
   (simulated latency), mapped through a Fibonacci computation, and summed
   modulo a large constant.  Compares the latency-hiding pool against the
   blocking baseline at several latencies, mirroring Figure 11's deltas.

   Run with: dune exec examples/map_reduce_latency.exe *)

module W = Lhws_workloads
module P = W.Pool_intf

let run_case ~n ~latency ~fib_n ~workers =
  let one (pool : P.pool) =
    let module Pool = (val pool : P.POOL) in
    let p = Pool.create ~workers () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> W.Map_reduce.run_on (module Pool) p ~n ~latency ~fib_n)
  in
  let lh = one P.lhws in
  let ws = one P.ws in
  assert (lh.W.Map_reduce.value = ws.W.Map_reduce.value);
  Format.printf "delta = %3.0f ms: latency-hiding %6.3f s   blocking %6.3f s   (%.1fx)@."
    (latency *. 1000.) lh.W.Map_reduce.elapsed ws.W.Map_reduce.elapsed
    (ws.W.Map_reduce.elapsed /. lh.W.Map_reduce.elapsed);
  (lh.W.Map_reduce.elapsed, ws.W.Map_reduce.elapsed)

let () =
  let n = 60 and fib_n = 18 and workers = 2 in
  Format.printf "map-and-reduce: n = %d remote values, fib(%d) per value, %d workers@." n fib_n
    workers;
  (* The paper sweeps delta in {500ms, 50ms, 1ms}; scaled to keep this
     example quick, the same crossover shape appears: big wins at high
     latency, parity when latency vanishes. *)
  List.iter
    (fun latency -> ignore (run_case ~n ~latency ~fib_n ~workers))
    [ 0.05; 0.005; 0.0005; 0.0 ]
