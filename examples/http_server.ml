(* A routed HTTP/1.1 server on a two-class micropool topology: the
   serving shape the paper's introduction gestures at, in ~60 lines.

   Routes carry their own dispatcher, so the topology decides where
   each request class runs:

   - GET /fib/:n  — pure compute, pinned to the batch pool.  A slow
     fib can never sit ahead of an echo request in the latency pool's
     deque, so the I/O class's tail latency is bounded by its own work.
   - POST /echo   — latency-bound I/O, pinned to the latency pool.

   The driver pool owns the accept loop, the parser fibers and the
   reactor; handlers run wherever their route says.  The example
   serves itself over loopback (so `dune runtest` keeps it honest) and
   prints the curl lines to try against a long-running copy.

   Run with: dune exec examples/http_server.exe *)

open Lhws_runtime
module W = Lhws_workloads
module P = W.Pool_intf
module T = W.Topology
module Reactor = Lhws_net.Reactor
module Http = Lhws_net.Http

let router topo =
  Http.Router.create
    [
      Http.Router.route
        ~dispatch:(T.dispatcher topo ~class_:T.Batch)
        ~meth:"GET" "/fib/:n"
        (fun params _req ->
          match int_of_string_opt (List.assoc "n" params) with
          | Some n when n >= 0 && n <= 35 ->
              Http.text (Printf.sprintf "fib(%d) = %d\n" n (W.Fib.seq n))
          | _ -> Http.text ~status:400 "n must be an integer in 0..35\n");
      Http.Router.route
        ~dispatch:(T.dispatcher topo ~class_:T.Latency)
        ~meth:"POST" "/echo"
        (fun _params req -> Http.response req.Http.body);
    ]

let () =
  T.with_topology ~name:"web"
    [ T.spec ~workers:1 T.Latency; T.spec ~workers:1 T.Batch ]
    (fun topo ->
      Lhws_pool.with_pool ~workers:1 (fun drv ->
          let rt =
            Reactor.fibers
              ~register:(fun ~pending ~syscalls poll ->
                Lhws_pool.register_poller drv ?pending ?syscalls poll)
              ()
          in
          let module Pool = P.Lhws_instance in
          Pool.run drv (fun () ->
              let srv =
                Http.serve_router
                  (module Pool)
                  drv rt
                  (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                  ~router:(router topo)
              in
              let port =
                match Http.addr srv with
                | Unix.ADDR_INET (_, p) -> p
                | Unix.ADDR_UNIX _ -> assert false
              in
              Format.printf "routed HTTP server on 127.0.0.1:%d@." port;
              Format.printf "  curl http://127.0.0.1:%d/fib/25@." port;
              Format.printf "  curl -d 'hello' http://127.0.0.1:%d/echo@." port;
              (* Exercise both routes over one keep-alive connection. *)
              let cl = Http.Client.connect (module Pool) drv rt (Http.addr srv) in
              let fib =
                Pool.await drv (Http.Client.call cl ~meth:"GET" ~target:"/fib/20" ())
              in
              assert (fib.Http.Client.status = 200);
              assert (Bytes.to_string fib.Http.Client.body = "fib(20) = 6765\n");
              let echo =
                Pool.await drv
                  (Http.Client.call cl ~body:(Bytes.of_string "hello") ~meth:"POST"
                     ~target:"/echo" ())
              in
              assert (echo.Http.Client.status = 200);
              assert (Bytes.to_string echo.Http.Client.body = "hello");
              let missing =
                Pool.await drv (Http.Client.call cl ~meth:"GET" ~target:"/nope" ())
              in
              assert (missing.Http.Client.status = 404);
              Format.printf "  GET /fib/20 -> %d %S@." fib.Http.Client.status
                (Bytes.to_string fib.Http.Client.body);
              Format.printf "  POST /echo  -> %d %S@." echo.Http.Client.status
                (Bytes.to_string echo.Http.Client.body);
              Http.Client.close cl;
              (* Each class ran on its own pool: the batch member did the
                 fib, the latency member the echo. *)
              let ran cls =
                let s = List.assoc cls (T.stats topo) in
                s.Lhws_runtime.Scheduler_core.tasks_run > 0
              in
              assert (ran T.Batch);
              assert (ran T.Latency);
              Http.shutdown ~grace:2. srv;
              Format.printf "served %d requests, shut down clean@."
                (Http.served srv))))
