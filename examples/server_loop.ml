(* The "server" of Section 5 (Figure 10): requests arrive one at a time —
   the next request cannot be accepted until the previous one has arrived —
   and handling a request runs in parallel with accepting the next.

   This is the suspension-width-1 extreme: only one operation is ever
   outstanding, so the latency-hiding scheduler maintains exactly one deque
   per worker (Lemma 7 with U = 1) and reduces to plain work stealing,
   while still overlapping request handling with request latency.

   The runtime half now runs over a real socket: a client OS thread sends
   requests 20 ms apart on one RPC connection, and the server dispatches
   each decoded request as a pool task (fib 18) while its read loop waits
   for the next arrival.  On the latency-hiding pool that read loop is a
   parked fiber, so 2 workers suffice for accepting, reading, and
   handling.  On the blocking pool the accept loop, the connection read
   loop, and the root each pin a worker, so it needs 4 workers before a
   single request can even be processed — the per-blocked-operation
   worker cost the paper is about.

   Run with: dune exec examples/server_loop.exe *)

module Gen = Lhws_dag.Generate
module Suspension = Lhws_dag.Suspension
open Lhws_core
open Lhws_runtime
module W = Lhws_workloads
module P = W.Pool_intf
module Reactor = Lhws_net.Reactor
module Listener = Lhws_net.Listener
module Rpc = Lhws_net.Rpc

let n = 30
let latency = 0.02 (* seconds between request arrivals *)
let fib_n = 18

(* The client speaks the RPC wire format directly over a raw socket:
   request [4B len | 8B id | payload], response adds a status byte.  It
   fires all [n] requests [latency] apart (arrival spacing, not a closed
   loop), then collects the [n] responses. *)
let client_thread addr result () =
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      let write_req i =
        let b = Bytes.create 20 in
        Bytes.set_int32_be b 0 8l;
        Bytes.set_int64_be b 4 (Int64.of_int i);
        Bytes.set_int64_be b 12 (Int64.of_int i);
        let rec push pos =
          if pos < 20 then push (pos + Unix.write fd b pos (20 - pos))
        in
        push 0
      in
      let read_exactly b len =
        let rec fill pos =
          if pos < len then
            match Unix.read fd b pos (len - pos) with
            | 0 -> failwith "server_loop client: server hung up"
            | k -> fill (pos + k)
        in
        fill 0
      in
      for i = 0 to n - 1 do
        write_req i;
        Unix.sleepf latency
      done;
      let total = ref 0 in
      for _ = 1 to n do
        let hdr = Bytes.create 13 in
        read_exactly hdr 13;
        let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
        let status = Bytes.get_uint8 hdr 12 in
        let payload = Bytes.create len in
        read_exactly payload len;
        if status <> 0 then failwith (Bytes.to_string payload);
        total := !total + Int64.to_int (Bytes.get_int64_be payload 0)
      done;
      result := !total)

let run_server (type p) (module Pool : P.POOL with type t = p) (pool : p) rt =
  Pool.run pool (fun () ->
      let l =
        Rpc.serve
          (module Pool)
          pool rt
          (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
          ~handler:(fun payload ->
            let i = Int64.to_int (Bytes.get_int64_be payload 0) in
            let b = Bytes.create 8 in
            Bytes.set_int64_be b 0 (Int64.of_int (W.Fib.seq fib_n + i));
            b)
      in
      let t0 = Unix.gettimeofday () in
      let result = ref 0 in
      let finished = Atomic.make false in
      let client =
        Thread.create
          (fun () ->
            client_thread (Listener.addr l) result ();
            Atomic.set finished true)
          ()
      in
      while not (Atomic.get finished) do
        Pool.sleep pool 0.005
      done;
      Thread.join client;
      let dt = Unix.gettimeofday () -. t0 in
      Listener.shutdown ~grace:2. l;
      (!result, dt))

let () =
  (* Simulator view: verify U = 1 (exhaustively on a small instance) and
     the one-deque-per-worker claim on a bigger one. *)
  let small = Gen.server ~n:3 ~f_work:2 ~latency:6 in
  Format.printf "server dag: U (exhaustive, n=3) = %d@." (Suspension.exact small);
  let dag = Gen.server ~n:8 ~f_work:3 ~latency:6 in
  let run = Lhws_sim.run dag ~p:4 in
  Format.printf "simulated on P=4: rounds = %d, max deques per worker = %d (Lemma 7: <= U+1 = \
                 2)@."
    run.Run.rounds run.Run.stats.Stats.max_deques_per_worker;

  (* Runtime view, over a real socket. *)
  let expect = n * W.Fib.seq fib_n + (n * (n - 1) / 2) in
  let v1, dt1 =
    let pool = Lhws_pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Lhws_pool.shutdown pool)
      (fun () ->
        let rt =
          Reactor.fibers
            ~register:(fun ~pending ~syscalls poll ->
            Lhws_pool.register_poller pool ?pending ?syscalls poll)
            ()
        in
        run_server (module P.Lhws_instance) pool rt)
  in
  assert (v1 = expect);
  let v2, dt2 =
    let module Pool = P.Ws_instance in
    let pool = Pool.create ~workers:4 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> run_server (module Pool) pool (Reactor.blocking ()))
  in
  assert (v2 = expect);
  Format.printf "%d requests over one socket, %.0f ms apart, fib(%d) handling:@." n
    (latency *. 1000.) fib_n;
  Format.printf "  latency-hiding server (2 workers): %.3f s@." dt1;
  Format.printf "  blocking server (4 workers needed): %.3f s@." dt2
