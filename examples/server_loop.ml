(* The "server" of Section 5 (Figure 10): requests arrive one at a time —
   the next request cannot be accepted until the previous one has arrived —
   and handling a request runs in parallel with accepting the next.

   This is the suspension-width-1 extreme: only one operation is ever
   outstanding, so the latency-hiding scheduler maintains exactly one deque
   per worker (Lemma 7 with U = 1) and reduces to plain work stealing,
   while still overlapping request handling with request latency.

   Run with: dune exec examples/server_loop.exe *)

module Gen = Lhws_dag.Generate
module Suspension = Lhws_dag.Suspension
open Lhws_core
module W = Lhws_workloads
module P = W.Pool_intf

let () =
  (* Simulator view: verify U = 1 (exhaustively on a small instance) and
     the one-deque-per-worker claim on a bigger one. *)
  let small = Gen.server ~n:3 ~f_work:2 ~latency:6 in
  Format.printf "server dag: U (exhaustive, n=3) = %d@." (Suspension.exact small);
  let dag = Gen.server ~n:8 ~f_work:3 ~latency:6 in
  let run = Lhws_sim.run dag ~p:4 in
  Format.printf "simulated on P=4: rounds = %d, max deques per worker = %d (Lemma 7: <= U+1 = \
                 2)@."
    run.Run.rounds run.Run.stats.Stats.max_deques_per_worker;

  (* Runtime view: 30 requests, 20 ms apart; handling each costs fib(18).
     The latency-hiding server overlaps handling with waiting; the blocking
     server alternates. *)
  let n = 30 and latency = 0.02 and fib_n = 18 in
  let one (pool : P.pool) =
    let module Pool = (val pool : P.POOL) in
    let p = Pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> W.Server.run_on (module Pool) p ~n ~latency ~fib_n)
  in
  let lh = one P.lhws in
  let ws = one P.ws in
  assert (lh.W.Server.value = ws.W.Server.value);
  Format.printf "%d requests, %.0f ms apart, fib(%d) handling, 2 workers:@." n (latency *. 1000.)
    fib_n;
  Format.printf "  latency-hiding server: %.3f s@." lh.W.Server.elapsed;
  Format.printf "  blocking server:       %.3f s@." ws.W.Server.elapsed
