(* A miniature client/server system over real loopback sockets: the
   motivating scenario of the paper's introduction ("a parallel server
   may communicate with clients to obtain requests and fulfill them"),
   now on the lib/net serving stack.

   Clients are plain OS threads outside the measured pools: each
   connects, sends one request and waits for the answer.  The server
   reads the request, consults a slow backing store (a 20 ms sleep —
   the per-request I/O latency), computes fib of the request and
   replies.

   - The latency-hiding server multiplexes the accept loop and every
     connection handler as fibers on 2 workers: all the 20 ms waits
     overlap, and the workers spend their time on the fib computations.
   - The blocking server occupies a worker per wait: one worker is
     pinned by the accept loop, the root task holds another, and the
     remaining worker serves connections one at a time, start to
     finish.  (With only 2 workers it could not even run a handler —
     that is the paper's point — so the blocking pool gets 3.)

   Run with: dune exec examples/echo_server.exe *)

open Lhws_runtime
module W = Lhws_workloads
module P = W.Pool_intf
module Net = Lhws_net.Net
module Reactor = Lhws_net.Reactor
module Conn = Lhws_net.Conn
module Listener = Lhws_net.Listener

let n_conns = 16
let store_delay = 0.02 (* seconds of backing-store latency per request *)
let request n = 15 + (n mod 5) (* fib argument *)

let encode n =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int n);
  b

let decode b = Int64.to_int (Bytes.get_int64_be b 0)

(* One external client: connect, ask, read the answer. *)
let client_thread addr results finished i =
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.incr finished)
    (fun () ->
      Unix.connect fd addr;
      ignore (Unix.write fd (encode (request i)) 0 8 : int);
      let b = Bytes.create 8 in
      let rec fill pos =
        if pos < 8 then
          match Unix.read fd b pos (8 - pos) with
          | 0 -> failwith "echo client: server hung up"
          | n -> fill (pos + n)
      in
      fill 0;
      results.(i) <- decode b)

let run_server (type p) (module Pool : P.POOL with type t = p) (pool : p) rt =
  Pool.run pool (fun () ->
      let l =
        Listener.serve
          (module Pool)
          pool rt
          (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
          ~handler:(fun c ->
            let b = Bytes.create 8 in
            Conn.read_exactly c b 8;
            Pool.sleep pool store_delay;
            Conn.write_all c (encode (W.Fib.seq (decode b))))
      in
      let t0 = Unix.gettimeofday () in
      let results = Array.make n_conns 0 in
      let finished = Atomic.make 0 in
      let threads =
        List.init n_conns (fun i ->
            Thread.create (client_thread (Listener.addr l) results finished) i)
      in
      (* Wait through the pool so a parked root costs nothing on the
         latency-hiding pool (on the blocking pool it pins a worker). *)
      while Atomic.get finished < n_conns do
        Pool.sleep pool 0.002
      done;
      List.iter Thread.join threads;
      let dt = Unix.gettimeofday () -. t0 in
      Listener.shutdown ~grace:2. l;
      (Array.fold_left ( + ) 0 results, dt))

let () =
  let expect =
    List.fold_left (fun acc i -> acc + W.Fib.seq (request i)) 0 (List.init n_conns Fun.id)
  in
  Format.printf
    "echo server: %d socket connections, %.0f ms backing-store latency per request@." n_conns
    (store_delay *. 1000.);
  let total1, dt1 =
    let pool = Lhws_pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Lhws_pool.shutdown pool)
      (fun () ->
        let rt =
          Reactor.fibers
            ~register:(fun ~pending ~syscalls poll ->
            Lhws_pool.register_poller pool ?pending ?syscalls poll)
            ()
        in
        run_server (module P.Lhws_instance) pool rt)
  in
  assert (total1 = expect);
  Format.printf "  latency-hiding (2 workers, fibers): %.3f s@." dt1;
  let total2, dt2 =
    let module Pool = P.Ws_instance in
    let pool = Pool.create ~workers:3 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> run_server (module Pool) pool (Reactor.blocking ()))
  in
  assert (total2 = expect);
  Format.printf "  blocking (3 workers needed):        %.3f s  (%.1fx slower)@." dt2
    (dt2 /. dt1)
