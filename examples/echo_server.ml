(* A miniature client/server system over real pipes: the motivating
   scenario of the paper's introduction ("a parallel server may communicate
   with clients to obtain requests and fulfill them").

   Each connection is a pair of pipes.  A client thinks for a while, sends
   a request, and waits for the answer; the server reads the request
   (incurring real I/O latency), computes fib of it, and replies.

   - On the latency-hiding pool, every client and every per-connection
     server handler is a fiber: two workers multiplex all of them, parking
     handlers on file-descriptor readiness (Io reactor) and timers.
   - On the blocking pool a read blocks the whole worker, so with two
     workers, handling the connections concurrently is impossible: the
     honest blocking design handles each connection start-to-finish.

   Run with: dune exec examples/echo_server.exe *)

open Lhws_runtime
module W = Lhws_workloads

type conn = {
  client_out : Unix.file_descr;  (* client writes requests here *)
  server_in : Unix.file_descr;
  server_out : Unix.file_descr;  (* server writes replies here *)
  client_in : Unix.file_descr;
}

let make_conn () =
  let server_in, client_out = Unix.pipe ~cloexec:true () in
  let client_in, server_out = Unix.pipe ~cloexec:true () in
  { client_out; server_in; server_out; client_in }

let close_conn c =
  List.iter Unix.close [ c.client_out; c.server_in; c.server_out; c.client_in ]

let encode n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  b

let decode b = Int64.to_int (Bytes.get_int64_le b 0)

let n_conns = 24
let think_time = 0.02 (* seconds before each client sends its request *)
let request n = 15 + (n mod 5) (* fib argument *)

(* Both paths drive their pool through the extended POOL interface; only
   the setup (registering the Io reactor, possible thanks to the exposed
   type equation Lhws_instance.t = Lhws_pool.t) and the I/O style differ. *)

module P = W.Pool_intf

let run_latency_hiding conns =
  let module Pool = P.Lhws_instance in
  let pool = Lhws_pool.create ~workers:2 () in
  let io = Io.create () in
  Lhws_pool.register_poller pool (fun () -> Io.poll io);
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let total =
        Pool.run pool (fun () ->
            let fibers =
              List.concat_map
                (fun (i, c) ->
                  let server =
                    Pool.async pool (fun () ->
                        let buf = Bytes.create 8 in
                        Io.read_exactly io c.server_in buf 8;
                        let answer = W.Fib.seq (decode buf) in
                        Io.write_all io c.server_out (encode answer);
                        0)
                  in
                  let client =
                    Pool.async pool (fun () ->
                        Pool.sleep pool think_time;
                        Io.write_all io c.client_out (encode (request i));
                        let buf = Bytes.create 8 in
                        Io.read_exactly io c.client_in buf 8;
                        decode buf)
                  in
                  [ server; client ])
                conns
            in
            List.fold_left (fun acc f -> acc + Pool.await pool f) 0 fibers)
      in
      (total, Unix.gettimeofday () -. t0))

let run_blocking conns =
  let module Pool = P.Ws_instance in
  let pool = Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let total =
        Pool.run pool (fun () ->
            (* Blocking I/O forces one connection per worker at a time. *)
            let handle (i, c) =
              Pool.sleep pool think_time;
              let b = encode (request i) in
              ignore (Unix.write c.client_out b 0 8);
              let buf = Bytes.create 8 in
              ignore (Unix.read c.server_in buf 0 8);
              let answer = W.Fib.seq (decode buf) in
              ignore (Unix.write c.server_out (encode answer) 0 8);
              ignore (Unix.read c.client_in buf 0 8);
              decode buf
            in
            let promises = List.map (fun conn -> Pool.async pool (fun () -> handle conn)) conns in
            List.fold_left (fun acc p -> acc + Pool.await pool p) 0 promises)
      in
      (total, Unix.gettimeofday () -. t0))

let () =
  let expect =
    List.fold_left (fun acc i -> acc + W.Fib.seq (request i)) 0 (List.init n_conns Fun.id)
  in
  Format.printf "echo server: %d connections, %.0f ms think time, fib per request, 2 workers@."
    n_conns (think_time *. 1000.);
  let conns1 = List.init n_conns (fun i -> (i, make_conn ())) in
  let total1, dt1 = run_latency_hiding conns1 in
  List.iter (fun (_, c) -> close_conn c) conns1;
  assert (total1 = expect);
  Format.printf "  latency-hiding (fibers + reactor): %.3f s@." dt1;
  let conns2 = List.init n_conns (fun i -> (i, make_conn ())) in
  let total2, dt2 = run_blocking conns2 in
  List.iter (fun (_, c) -> close_conn c) conns2;
  assert (total2 = expect);
  Format.printf "  blocking (connection at a time):   %.3f s  (%.1fx slower)@." dt2 (dt2 /. dt1)
